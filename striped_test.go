package hazy

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hazy/internal/core"
)

// buildStripedFixture declares a corpus and two identical views over
// it — one unstriped, one PARTITIONS 4 — plus n warm examples each.
func buildStripedFixture(t *testing.T, s *Session, n int) {
	t.Helper()
	// Identical twin corpora: two engines may not share tables, so the
	// striped and unstriped views each get their own copies.
	mustExec(t, s, "CREATE TABLE sp (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE sp2 (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE sf (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, "CREATE TABLE sf2 (id BIGINT, label BIGINT) KEY id")
	r := rand.New(rand.NewSource(23))
	for id := int64(0); id < 80; id++ {
		line := title(r, id%2 == 0)
		mustExec(t, s, fmt.Sprintf("INSERT INTO sp VALUES (%d, '%s')", id, line))
		mustExec(t, s, fmt.Sprintf("INSERT INTO sp2 VALUES (%d, '%s')", id, line))
	}
	mustExec(t, s, `CREATE CLASSIFICATION VIEW flat KEY id
		ENTITIES FROM sp KEY id EXAMPLES FROM sf KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM`)
	mustExec(t, s, `CREATE CLASSIFICATION VIEW banded KEY id
		ENTITIES FROM sp2 KEY id EXAMPLES FROM sf2 KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM PARTITIONS 4`)
	for id := int64(0); id < int64(n); id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO sf VALUES (%d, %d)", id, label))
		mustExec(t, s, fmt.Sprintf("INSERT INTO sf2 VALUES (%d, %d)", id, label))
	}
}

// TestStripedViewViaSQL cross-checks the striped layout against its
// unstriped twin through the SQL surface: identical labels, members,
// counts, and eps-band results for the same workload, with the
// merge-scan plan visible in EXPLAIN — live and engined.
func TestStripedViewViaSQL(t *testing.T) {
	s := newSession(t)
	buildStripedFixture(t, s, 16)

	cv, err := s.DB().View("banded")
	if err != nil {
		t.Fatal(err)
	}
	sv, ok := cv.Core().(*core.StripedView)
	if !ok || sv.Stripes() != 4 {
		t.Fatalf("banded core = %T, want *core.StripedView with 4 stripes", cv.Core())
	}

	same := func(stmt string) {
		t.Helper()
		a := mustExec(t, s, strings.ReplaceAll(stmt, "$V", "flat"))
		b := mustExec(t, s, strings.ReplaceAll(stmt, "$V", "banded"))
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			t.Fatalf("%s diverges:\nflat   %v\nbanded %v", stmt, a.Rows, b.Rows)
		}
	}
	queries := []string{
		"SELECT COUNT(*) FROM $V WHERE class = 1",
		"SELECT COUNT(*) FROM $V WHERE class = -1",
		"SELECT id FROM $V WHERE class = 1",
		"SELECT id, class FROM $V ORDER BY id DESC LIMIT 10",
		"SELECT class FROM $V WHERE id = 33",
		"SELECT COUNT(*) FROM $V WHERE eps >= -100.0 AND eps <= 100.0",
	}
	for _, q := range queries {
		same(q)
	}

	// The live striped plan is the scatter-gather merge.
	r := mustExec(t, s, "EXPLAIN SELECT id FROM banded WHERE eps >= -1.0 AND eps <= 1.0")
	plan := fmt.Sprint(r.Rows)
	if !strings.Contains(plan, "EpsMergeScan(banded, live") || !strings.Contains(plan, "stripes=4") {
		t.Fatalf("live striped plan = %s", plan)
	}

	// Engined: the snapshot is pre-merged, so plans revert to the
	// single-cursor shapes while answers stay identical.
	mustExec(t, s, "ATTACH ENGINE TO banded")
	mustExec(t, s, "ATTACH ENGINE TO flat")
	for id := int64(16); id < 24; id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO sf VALUES (%d, %d)", id, label))
		mustExec(t, s, fmt.Sprintf("INSERT INTO sf2 VALUES (%d, %d)", id, label))
	}
	for _, q := range queries {
		same(q)
	}
	r = mustExec(t, s, "EXPLAIN SELECT id FROM banded WHERE eps >= -1.0 AND eps <= 1.0")
	plan = fmt.Sprint(r.Rows)
	if !strings.Contains(plan, "EpsRange(banded, snapshot") {
		t.Fatalf("engined striped plan = %s", plan)
	}
}

// TestStripedRequiresHazy pins the declaration constraint: striping
// composes with every architecture but needs the eps clustering, so
// only STRATEGY NAIVE rejects a PARTITIONS clause.
func TestStripedRequiresHazy(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE rp (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE rf (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, "INSERT INTO rp VALUES (1, 'query optimizer join index')")
	bad := `CREATE CLASSIFICATION VIEW x KEY id ENTITIES FROM rp EXAMPLES FROM rf STRATEGY NAIVE PARTITIONS 2`
	if _, err := s.Exec(bad); err == nil || !strings.Contains(err.Error(), "PARTITIONS") {
		t.Fatalf("%s: err = %v, want PARTITIONS constraint error", bad, err)
	}
	// Every architecture stripes under the Hazy strategy.
	for i, arch := range []string{"MM", "OD", "HYBRID"} {
		stmt := fmt.Sprintf(`CREATE CLASSIFICATION VIEW ok%d KEY id
			ENTITIES FROM rp KEY id EXAMPLES FROM rf KEY id LABEL label
			ARCHITECTURE %s PARTITIONS 2`, i, arch)
		mustExec(t, s, stmt)
		cv, err := s.DB().View(fmt.Sprintf("ok%d", i))
		if err != nil {
			t.Fatal(err)
		}
		sv, ok := cv.Core().(*core.StripedView)
		if !ok || sv.Stripes() != 2 {
			t.Fatalf("ARCHITECTURE %s PARTITIONS 2: core = %T, want 2-stripe *core.StripedView", arch, cv.Core())
		}
	}
}

// TestStripedDiskHybridViaSQL cross-checks the disk-resident striped
// layouts against the unstriped main-memory twin through the SQL
// surface, pins the scatter-gather plan, and reopens the database to
// prove the striped on-disk declaration (stripe subdirectories and
// all) rides the manifest.
func TestStripedDiskHybridViaSQL(t *testing.T) {
	for _, arch := range []string{"OD", "HYBRID"} {
		t.Run(arch, func(t *testing.T) {
			dir := t.TempDir()
			db, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			s := db.NewSession()
			mustExec(t, s, "CREATE TABLE dp (id BIGINT, title TEXT) KEY id")
			mustExec(t, s, "CREATE TABLE dp2 (id BIGINT, title TEXT) KEY id")
			mustExec(t, s, "CREATE TABLE df (id BIGINT, label BIGINT) KEY id")
			mustExec(t, s, "CREATE TABLE df2 (id BIGINT, label BIGINT) KEY id")
			r := rand.New(rand.NewSource(47))
			for id := int64(0); id < 60; id++ {
				line := title(r, id%2 == 0)
				mustExec(t, s, fmt.Sprintf("INSERT INTO dp VALUES (%d, '%s')", id, line))
				mustExec(t, s, fmt.Sprintf("INSERT INTO dp2 VALUES (%d, '%s')", id, line))
			}
			mustExec(t, s, `CREATE CLASSIFICATION VIEW flat KEY id
				ENTITIES FROM dp KEY id EXAMPLES FROM df KEY id LABEL label
				FEATURE FUNCTION tf_bag_of_words USING SVM`)
			mustExec(t, s, fmt.Sprintf(`CREATE CLASSIFICATION VIEW banded KEY id
				ENTITIES FROM dp2 KEY id EXAMPLES FROM df2 KEY id LABEL label
				FEATURE FUNCTION tf_bag_of_words USING SVM
				ARCHITECTURE %s PARTITIONS 3`, arch))
			for id := int64(0); id < 12; id++ {
				label := 1 - 2*(id%2)
				mustExec(t, s, fmt.Sprintf("INSERT INTO df VALUES (%d, %d)", id, label))
				mustExec(t, s, fmt.Sprintf("INSERT INTO df2 VALUES (%d, %d)", id, label))
			}

			same := func(stmt string) {
				t.Helper()
				a := mustExec(t, s, strings.ReplaceAll(stmt, "$V", "flat"))
				b := mustExec(t, s, strings.ReplaceAll(stmt, "$V", "banded"))
				if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
					t.Fatalf("%s diverges:\nflat   %v\nbanded %v", stmt, a.Rows, b.Rows)
				}
			}
			queries := []string{
				"SELECT COUNT(*) FROM $V WHERE class = 1",
				"SELECT id FROM $V WHERE class = 1",
				"SELECT id, class FROM $V ORDER BY id DESC LIMIT 10",
				"SELECT class FROM $V WHERE id = 17",
				"SELECT COUNT(*) FROM $V WHERE eps >= -100.0 AND eps <= 100.0",
			}
			for _, q := range queries {
				same(q)
			}
			plan := fmt.Sprint(mustExec(t, s, "EXPLAIN SELECT id FROM banded WHERE eps >= -1.0 AND eps <= 1.0").Rows)
			if !strings.Contains(plan, "EpsMergeScan(banded, live") || !strings.Contains(plan, "stripes=3") {
				t.Fatalf("live striped %s plan = %s", arch, plan)
			}

			want := mustExec(t, s, "SELECT id FROM banded WHERE class = 1")
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer db2.Close()
			cv, err := db2.View("banded")
			if err != nil {
				t.Fatal(err)
			}
			sv, ok := cv.Core().(*core.StripedView)
			if !ok || sv.Stripes() != 3 {
				t.Fatalf("reopened banded core = %T, want 3-stripe *core.StripedView", cv.Core())
			}
			got := mustExec(t, db2.NewSession(), "SELECT id FROM banded WHERE class = 1")
			if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
				t.Fatalf("members after reopen: %v, want %v", got.Rows, want.Rows)
			}
		})
	}
}

// TestStripedPersistsAcrossReopen: the resolved stripe count rides
// the catalog manifest, so a reopen — without any DefaultPartitions
// option — re-declares the view striped.
func TestStripedPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenWith(dir, OpenOptions{DefaultPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession()
	mustExec(t, s, "CREATE TABLE pp (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE pf (id BIGINT, label BIGINT) KEY id")
	r := rand.New(rand.NewSource(5))
	for id := int64(0); id < 30; id++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO pp VALUES (%d, '%s')", id, title(r, id%2 == 0)))
	}
	// No PARTITIONS clause: picks up the database default.
	mustExec(t, s, `CREATE CLASSIFICATION VIEW pv KEY id
		ENTITIES FROM pp KEY id EXAMPLES FROM pf KEY id LABEL label`)
	for id := int64(0); id < 8; id++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO pf VALUES (%d, %d)", id, 1-2*(id%2)))
	}
	cv, err := db.View("pv")
	if err != nil {
		t.Fatal(err)
	}
	if sv, ok := cv.Core().(*core.StripedView); !ok || sv.Stripes() != 4 {
		t.Fatalf("pv core = %T, want 4 stripes from DefaultPartitions", cv.Core())
	}
	want := mustExec(t, s, "SELECT id FROM pv WHERE class = 1")
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(dir) // note: no DefaultPartitions this time
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	cv2, err := db2.View("pv")
	if err != nil {
		t.Fatal(err)
	}
	if sv, ok := cv2.Core().(*core.StripedView); !ok || sv.Stripes() != 4 {
		t.Fatalf("reopened pv core = %T, want 4 stripes from the manifest", cv2.Core())
	}
	got := mustExec(t, db2.NewSession(), "SELECT id FROM pv WHERE class = 1")
	if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
		t.Fatalf("members after reopen: %v, want %v", got.Rows, want.Rows)
	}
}

// TestClassifyUntrainedViewErrors covers the serving contract on a
// freshly declared, never-trained view: CLASSIFY-shaped reads error
// out loud (live and engined) while Label still answers.
func TestClassifyUntrainedViewErrors(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE up (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE uf (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, "INSERT INTO up VALUES (1, 'relational query optimization')")
	mustExec(t, s, `CREATE CLASSIFICATION VIEW uv KEY id
		ENTITIES FROM up KEY id EXAMPLES FROM uf KEY id LABEL label`)

	for _, engined := range []bool{false, true} {
		if engined {
			mustExec(t, s, "ATTACH ENGINE TO uv")
		}
		bv, err := s.Bind("uv")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bv.Classify("query optimization"); err == nil || !strings.Contains(err.Error(), "untrained") {
			t.Fatalf("engined=%v: Classify on untrained view: err = %v, want untrained error", engined, err)
		}
		if _, err := bv.Label(1); err != nil {
			t.Fatalf("engined=%v: Label on untrained view: %v", engined, err)
		}
	}
	// Training flips Classify to serving.
	mustExec(t, s, "INSERT INTO uf VALUES (1, 1)")
	if got, err := s.Classify("uv", "relational query optimization"); err != nil || got != 1 {
		t.Fatalf("Classify after train = %d, %v", got, err)
	}
}
