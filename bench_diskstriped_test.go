// Disk-resident striped-reorganization benchmark: the PR-10 tentpole
// claim is that striping composes with the on-disk architecture —
// per-stripe clustered B+-tree generations behind private buffer
// pools — so one reorganization event rewrites n/P records instead of
// n. The headline metric is the reorganization STALL: the slowest
// single stripe's rebuild (Stats().LastReorgNs), which is the pause a
// reorganization imposes on that stripe's band regardless of how many
// cores run the scatter. Stall shrinks ~P× with P stripes on any
// machine; total wall time additionally shrinks with cores. Both are
// reported; the committed speedup key is stall-based so the trajectory
// is stable across single- and multi-core runners.
//
// The full run builds a 10M-entity disk-resident view (≈1 GiB of
// generation file per layout) and is gated behind BENCH_JSON_OUT like
// every trajectory emitter; DISK_BENCH_ENTITIES scales it down for
// smoke runs (CI races a 20k-entity pass, then measures the full 10M
// in the non-race disk-bench job and diffs against BENCH_pr10.json).
package hazy

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"hazy/internal/core"
	"hazy/internal/learn"
	"hazy/internal/vector"
)

const (
	diskStripedDefaultEntities = 10_000_000
	diskStripedDim             = 8
	diskStripedPoolPages       = 1024
)

// diskStripedEntityCount honors the DISK_BENCH_ENTITIES scale-down.
func diskStripedEntityCount(tb testing.TB) int {
	if s := os.Getenv("DISK_BENCH_ENTITIES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1000 {
			tb.Fatalf("DISK_BENCH_ENTITIES=%q: want an integer >= 1000", s)
		}
		return n
	}
	return diskStripedDefaultEntities
}

// diskStripedCorpus synthesizes the dense corpus. Unlike the 50k
// main-memory corpus this is not cached across configurations — at
// 10M entities the slices are ~1 GiB and each configuration should
// pay its build, not inherit a sibling's heap.
func diskStripedCorpus(n int) ([]core.Entity, []learn.Example) {
	r := rand.New(rand.NewSource(71))
	ents := make([]core.Entity, n)
	for i := range ents {
		f := make([]float64, diskStripedDim)
		for d := range f {
			f[d] = r.NormFloat64()
		}
		ents[i] = core.Entity{ID: int64(i), F: vector.NewDense(f)}
	}
	exs := make([]learn.Example, 16)
	for i := range exs {
		f := make([]float64, diskStripedDim)
		for d := range f {
			f[d] = r.NormFloat64()
		}
		exs[i] = learn.Example{F: vector.NewDense(f), Label: 1 - 2*(i%2)}
	}
	return ents, exs
}

// diskStripedMeasure builds an on-disk view with the given stripe
// count, measures one full reorganization (Retrain), and returns wall
// nanoseconds and the per-stripe stall (slowest single stripe's
// rebuild; equal to wall work for the unstriped layout).
func diskStripedMeasure(tb testing.TB, dir string, entities int, stripes int) (wallNs, stallNs int64) {
	ents, exs := diskStripedCorpus(entities)
	opts := core.Options{Norm: 2, SGD: learn.SGDConfig{Eta0: 0.3}, Warm: exs, Partitions: stripes}
	v, err := core.New(core.OnDisk, core.HazyStrategy, dir, diskStripedPoolPages, ents, opts)
	if err != nil {
		tb.Fatal(err)
	}
	defer func() {
		if c, ok := v.(interface{ Close() error }); ok {
			c.Close()
		}
	}()
	res := testing.Benchmark(func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := v.Retrain(exs); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res.NsPerOp(), v.Stats().LastReorgNs
}

// BenchmarkDiskStripedReorg is the go-bench form (scaled down unless
// DISK_BENCH_ENTITIES says otherwise — a full 10M iteration per
// go-bench round is CI-hostile; the trajectory run goes through
// TestDiskStripedReorgEmitJSON).
func BenchmarkDiskStripedReorg(b *testing.B) {
	entities := 50_000
	if s := os.Getenv("DISK_BENCH_ENTITIES"); s != "" {
		entities = diskStripedEntityCount(b)
	}
	ents, exs := diskStripedCorpus(entities)
	for _, stripes := range []int{1, 4} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			opts := core.Options{Norm: 2, SGD: learn.SGDConfig{Eta0: 0.3}, Warm: exs, Partitions: stripes}
			v, err := core.New(core.OnDisk, core.HazyStrategy, b.TempDir(), diskStripedPoolPages, ents, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer v.(interface{ Close() error }).Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Retrain(exs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDiskStripedReorgEmitJSON measures the disk-resident striped
// reorganization at 1 vs 4 stripes and writes the trajectory JSON to
// BENCH_JSON_OUT (CI's disk-bench job emits and diffs BENCH_pr10.json
// at the full 10M entities). speedup_4stripes is the stall ratio —
// the per-event write pause striping bounds at n/P — and is the
// guarded key; wall times are committed as latency keys.
func TestDiskStripedReorgEmitJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT=<path> to emit the disk-striped reorg benchmark JSON")
	}
	entities := diskStripedEntityCount(t)
	base := t.TempDir()
	wall1, stall1 := diskStripedMeasure(t, filepath.Join(base, "s1"), entities, 1)
	wall4, stall4 := diskStripedMeasure(t, filepath.Join(base, "s4"), entities, 4)
	if stall1 <= 0 || stall4 <= 0 {
		t.Fatalf("stall not measured: stripes1=%d stripes4=%d", stall1, stall4)
	}
	report := map[string]any{
		"bench":                "DiskStripedReorg",
		"entities":             entities,
		"dim":                  diskStripedDim,
		"cores":                runtime.GOMAXPROCS(0),
		"stripes1_reorg_ns_op": wall1,
		"stripes4_reorg_ns_op": wall4,
		"stripes1_stall_ns_op": stall1,
		"stripes4_stall_ns_op": stall4,
		"speedup_4stripes":     float64(stall1) / float64(stall4),
		"wall_ratio_4stripes":  float64(wall1) / float64(wall4),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
