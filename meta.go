package hazy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"hazy/internal/core"
	"hazy/internal/storage"
	"hazy/internal/wal"
)

// The hazy-level catalog manifest persists what the storage-level
// manifest (internal/relation's catalog.json) cannot know: which
// dialect shape each table has (entity vs examples, and the entity
// text column) and every declared classification view's spec. With
// it, Open recovers tables by their recorded kind instead of guessing
// from the schema shape, and re-declares each view — the view's
// contents are still recomputed from the persisted tables (§3.5.1),
// only the declaration is durable.

const metaFile = "hazy.json"

type metaTable struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "entity" | "example"
	// TextCol is the entity table's text column name (empty for
	// example tables).
	TextCol string `json:"text_col,omitempty"`
}

type metaView struct {
	Name     string `json:"name"`
	Entities string `json:"entities"`
	Examples string `json:"examples"`
	Feature  string `json:"feature,omitempty"`
	// Method is the declared USING clause; empty means automatic
	// selection, re-run over the warm examples at every open.
	Method     string  `json:"method,omitempty"`
	Arch       string  `json:"arch"`
	Strategy   string  `json:"strategy"`
	Mode       string  `json:"mode"`
	Alpha      float64 `json:"alpha,omitempty"`
	BufferFrac float64 `json:"buffer_frac,omitempty"`
	PoolPages  int     `json:"pool_pages,omitempty"`
	// Partitions is the resolved stripe count (0/1 = unstriped).
	Partitions int `json:"partitions,omitempty"`
}

type metaManifest struct {
	Tables []metaTable `json:"tables"`
	Views  []metaView  `json:"views"`
}

// buildMeta assembles the manifest from the catalog maps. Callers
// hold db.mu (read or write).
func (db *DB) buildMeta() metaManifest {
	var m metaManifest
	for _, name := range sortedKeys(db.tables) {
		m.Tables = append(m.Tables, metaTable{
			Name: name, Kind: "entity", TextCol: db.tables[name].TextColumn(),
		})
	}
	for _, name := range sortedKeys(db.examples) {
		m.Tables = append(m.Tables, metaTable{Name: name, Kind: "example"})
	}
	// Pending views (deferred for a missing custom feature function)
	// stay in the manifest: they are still declared, just not rebuilt
	// in this process yet.
	specs := make([]ViewSpec, 0, len(db.specs)+len(db.pending))
	for _, name := range sortedKeys(db.specs) {
		specs = append(specs, db.specs[name])
	}
	specs = append(specs, db.pending...)
	for _, spec := range specs {
		m.Views = append(m.Views, metaView{
			Name:       spec.Name,
			Entities:   spec.Entities,
			Examples:   spec.Examples,
			Feature:    spec.FeatureFunction,
			Method:     spec.Method,
			Arch:       spec.Arch.String(),
			Strategy:   spec.Strategy.String(),
			Mode:       spec.Mode.String(),
			Alpha:      spec.Alpha,
			BufferFrac: spec.BufferFrac,
			PoolPages:  spec.PoolPages,
			Partitions: spec.Partitions,
		})
	}
	return m
}

// saveMeta writes the hazy-level manifest atomically. Callers hold
// db.mu (read or write).
func (db *DB) saveMeta() error {
	m := db.buildMeta()
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("hazy: marshal manifest: %w", err)
	}
	path := filepath.Join(db.dir, metaFile)
	if err := storage.WriteFileAtomic(db.vfs, path, data, db.fsync == wal.SyncAlways); err != nil {
		return fmt.Errorf("hazy: write manifest: %w", err)
	}
	return nil
}

// loadMeta reads the hazy-level manifest through the database's VFS;
// a missing file returns nil (a pre-manifest directory, recovered by
// the schema heuristic).
func loadMeta(vfs storage.VFS, dir string) (*metaManifest, error) {
	data, err := vfs.ReadFile(filepath.Join(dir, metaFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("hazy: read manifest: %w", err)
	}
	var m metaManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("hazy: parse manifest: %w", err)
	}
	return &m, nil
}

// spec reconstructs a ViewSpec from its manifest row.
func (mv metaView) spec() (ViewSpec, error) {
	spec := ViewSpec{
		Name:            mv.Name,
		Entities:        mv.Entities,
		Examples:        mv.Examples,
		FeatureFunction: mv.Feature,
		Method:          mv.Method,
		Alpha:           mv.Alpha,
		BufferFrac:      mv.BufferFrac,
		PoolPages:       mv.PoolPages,
		Partitions:      mv.Partitions,
	}
	var err error
	if spec.Arch, err = core.ParseArch(mv.Arch); err != nil {
		return spec, fmt.Errorf("hazy: manifest view %q: %w", mv.Name, err)
	}
	if spec.Strategy, err = core.ParseStrategy(mv.Strategy); err != nil {
		return spec, fmt.Errorf("hazy: manifest view %q: %w", mv.Name, err)
	}
	if spec.Mode, err = core.ParseMode(mv.Mode); err != nil {
		return spec, fmt.Errorf("hazy: manifest view %q: %w", mv.Name, err)
	}
	return spec, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
