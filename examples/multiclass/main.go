// Multiclass: one-vs-all classification over Hazy views
// (paper App. B.5.4 / C.3) on a Forest-like 7-class data set. Each
// class gets its own incrementally maintained binary view; updates
// fan out, reads walk the decision list. (A vector-level workload
// below the Session front door — a SQL surface for multiclass views
// is future work on top of the catalog-wide Session API.)
package main

import (
	"fmt"
	"log"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/learn"
	"hazy/internal/multiclass"
)

func main() {
	data := dataset.Generate(dataset.Forest.Scale(0.2))
	fmt.Printf("corpus: %d entities, %d dense features, %d classes\n",
		len(data.Entities), data.Spec.Features, data.Spec.Classes)

	ids := make([]int64, len(data.Entities))
	for i, e := range data.Entities {
		ids[i] = e.ID
	}
	mc, err := multiclass.New(data.Spec.Classes, ids, func(c int) (core.View, error) {
		return core.NewMemView(data.Entities, core.HazyStrategy, core.Options{
			Mode: core.Eager,
			Norm: 2,
			SGD:  learn.SGDConfig{Eta0: 0.5},
		}), nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Stream labeled examples; each update maintains all 7 views.
	const updates = 6000
	for i := 0; i < updates; i++ {
		f, cls := data.MulticlassExample()
		if err := mc.Update(f, cls); err != nil {
			log.Fatal(err)
		}
	}

	// Evaluate on the stored entities against the ground truth.
	correct := 0
	classCounts := make([]int, data.Spec.Classes)
	for _, e := range data.Entities {
		got, err := mc.Label(e.ID)
		if err != nil {
			log.Fatal(err)
		}
		classCounts[got]++
		if got == data.Class(e.F) {
			correct++
		}
	}
	fmt.Printf("after %d updates: %.1f%% of entities match ground truth\n",
		updates, 100*float64(correct)/float64(len(data.Entities)))
	fmt.Printf("class sizes via decision list: %v\n", classCounts)

	// The per-class views expose their own maintenance stats.
	for c := 0; c < data.Spec.Classes; c++ {
		st := mc.View(c).Stats()
		fmt.Printf("  class %d view: %d reorgs, band holds %d tuples\n",
			c, st.Reorgs, st.BandTuples)
	}
}
