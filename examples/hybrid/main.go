// Hybrid: the §3.5.2 architecture — a full on-disk Hazy view plus a
// tiny ε-map and a bounded boundary buffer in memory. Shows the
// memory footprint next to the data set size (Figure 6(A)) and how
// the read path splits across ε-map / buffer / disk as the buffer
// grows (Figure 6(B)). (Works at the core-view layer; through the
// Session front door the same architecture is declared with
// ARCHITECTURE HYBRID in CREATE CLASSIFICATION VIEW.)
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/learn"
)

func main() {
	scratch, err := os.MkdirTemp("", "hazy-hybrid-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)

	data := dataset.Generate(dataset.Citeseer.Scale(0.3))
	ds := data.Stats()
	fmt.Printf("corpus: %d abstracts, %.1f MB with feature vectors\n",
		ds.Entities, float64(ds.SizeBytes)/(1<<20))

	warm := data.Stream(2000)
	for _, bufFrac := range []float64{0.01, 0.10, 0.50} {
		view, err := core.NewHybridView(
			fmt.Sprintf("%s/buf-%g", scratch, bufFrac), 2048, data.Entities,
			core.Options{
				Mode:       core.Eager,
				SGD:        learn.SGDConfig{Eta0: 0.5},
				Warm:       warm,
				BufferFrac: bufFrac,
			})
		if err != nil {
			log.Fatal(err)
		}
		// Drift the model a little so the water band is non-trivial.
		for i := 0; i < 300; i++ {
			ex := data.Example()
			if err := view.Update(ex.F, ex.Label); err != nil {
				log.Fatal(err)
			}
		}
		// 20k random Single Entity reads.
		r := rand.New(rand.NewSource(9))
		for i := 0; i < 20000; i++ {
			if _, err := view.Label(int64(r.Intn(len(data.Entities)))); err != nil {
				log.Fatal(err)
			}
		}
		epsHits, bufHits, diskHits := view.Hits()
		st := view.Stats()
		fmt.Printf("\nbuffer = %3.0f%% of entities:\n", bufFrac*100)
		fmt.Printf("  in-memory: ε-map %.1f KB + buffer %.1f KB (data set %.1f MB)\n",
			float64(st.EpsMapBytes)/1024, float64(st.BufferBytes)/1024,
			float64(ds.SizeBytes)/(1<<20))
		total := float64(epsHits + bufHits + diskHits)
		fmt.Printf("  reads: %.1f%% answered by ε-map watermarks, %.1f%% by buffer, %.1f%% hit disk\n",
			100*float64(epsHits)/total, 100*float64(bufHits)/total, 100*float64(diskHits)/total)
		view.Close()
	}
}
