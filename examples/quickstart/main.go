// Quickstart: the paper's §2.1 workflow through the Session API —
// declare tables and a classification view in SQL, feed user
// feedback with plain INSERTs, query the view with SELECT, and
// attach a concurrent maintenance engine to it, all through the same
// front door the hazyql REPL and the hazyd server use. The Go-level
// handles (DB.View, ClassView.Label, …) interoperate with the SQL
// surface throughout.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"hazy"
)

func main() {
	dir, err := os.MkdirTemp("", "hazy-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hazy.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	sess := db.NewSession()

	exec := func(stmt string) *hazy.Result {
		res, err := sess.Exec(stmt)
		if err != nil {
			log.Fatalf("%s\n→ %v", stmt, err)
		}
		return res
	}

	// The In relation and the training-examples relation.
	exec(`CREATE TABLE papers (id BIGINT, title TEXT) KEY id`)
	exec(`CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id`)
	titles := map[int64]string{
		1: "efficient query optimization for relational database systems",
		2: "a scalable kernel scheduler for multicore operating systems",
		3: "incremental sql view maintenance with database triggers",
		4: "low latency kernel interrupt handling in device drivers",
		5: "query rewriting and index selection for relational database workloads",
		6: "kernel page replacement policies for operating systems",
		7: "sql transaction processing in relational database engines",
		8: "filesystem scheduler tuning inside the operating systems kernel",
	}
	for id, title := range titles {
		exec(fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, title))
	}

	// CREATE CLASSIFICATION VIEW labeled_papers ... (Example 2.1).
	exec(`CREATE CLASSIFICATION VIEW labeled_papers KEY id
	      ENTITIES FROM papers KEY id
	      EXAMPLES FROM feedback KEY id LABEL label
	      FEATURE FUNCTION tf_bag_of_words USING SVM`)

	// Serve it concurrently: reads come lock-free from published
	// snapshots, writes batch through the engine's queue — and the
	// INSERT statements below route through it automatically.
	exec(`ATTACH ENGINE TO labeled_papers`)

	// Feedback: a few papers labeled database (+1) or not (−1). Each
	// insert retrains the model incrementally and maintains the view —
	// the paper's type-2 dynamic data.
	exec(`INSERT INTO feedback VALUES (1, 1), (2, -1), (3, 1), (4, -1)`)

	// Single Entity reads: "is paper 5 a database paper?"
	for _, id := range []int64{5, 6, 7, 8} {
		res := exec(fmt.Sprintf("SELECT class FROM labeled_papers WHERE id = %d", id))
		verdict := "no "
		if res.Rows[0][0] == "1" {
			verdict = "yes"
		}
		fmt.Printf("paper %d: database? %s  (%q)\n", id, verdict, titles[id])
	}

	// All Members: "return all database papers."
	res := exec(`SELECT id FROM labeled_papers WHERE class = 1`)
	var members []string
	for _, row := range res.Rows {
		members = append(members, row[0])
	}
	fmt.Printf("database papers: [%s]\n", strings.Join(members, " "))

	// New entities arriving later are classified on insert (type-1
	// dynamic data) — synchronously through the engine, so the read
	// right after sees the write.
	exec(`INSERT INTO papers VALUES (9, 'cost based query optimization of sql database views')`)
	res = exec(`SELECT class FROM labeled_papers WHERE id = 9`)
	fmt.Printf("late-arriving paper 9 classified: %s\n", res.Rows[0][0])

	// The Go handles see the same catalog the SQL surface built.
	exec(`DETACH ENGINE FROM labeled_papers`)
	view, err := db.View("labeled_papers")
	if err != nil {
		log.Fatal(err)
	}
	st := view.Stats()
	fmt.Printf("maintenance: %d updates, %d reorganizations, band [%0.3f, %0.3f]\n",
		st.Updates, st.Reorgs, st.LowWater, st.HighWater)
}
