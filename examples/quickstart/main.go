// Quickstart: declare a classification view over a table of papers,
// feed it user feedback through plain inserts, and read labels back —
// the paper's §2.1 workflow through the Go API.
package main

import (
	"fmt"
	"log"
	"os"

	"hazy"
)

func main() {
	dir, err := os.MkdirTemp("", "hazy-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hazy.Open(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The In relation: papers to classify.
	papers, err := db.CreateEntityTable("papers", "title")
	if err != nil {
		log.Fatal(err)
	}
	titles := map[int64]string{
		1: "efficient query optimization for relational database systems",
		2: "a scalable kernel scheduler for multicore operating systems",
		3: "incremental sql view maintenance with database triggers",
		4: "low latency kernel interrupt handling in device drivers",
		5: "query rewriting and index selection for relational database workloads",
		6: "kernel page replacement policies for operating systems",
		7: "sql transaction processing in relational database engines",
		8: "filesystem scheduler tuning inside the operating systems kernel",
	}
	for id, title := range titles {
		if err := papers.InsertText(id, title); err != nil {
			log.Fatal(err)
		}
	}

	// The training-examples relation: user feedback arrives here.
	feedback, err := db.CreateExampleTable("feedback")
	if err != nil {
		log.Fatal(err)
	}

	// CREATE CLASSIFICATION VIEW labeled_papers ... (Example 2.1).
	view, err := db.CreateClassificationView(hazy.ViewSpec{
		Name:            "labeled_papers",
		Entities:        "papers",
		Examples:        "feedback",
		FeatureFunction: "tf_bag_of_words",
		Method:          "svm",
		Arch:            hazy.MainMemory,
		Strategy:        hazy.Hazy,
		Mode:            hazy.Eager,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Feedback: a few papers labeled database (+1) or not (−1).
	// Each insert retrains the model incrementally and maintains the
	// view — the paper's type-2 dynamic data.
	for _, fb := range []struct {
		id    int64
		label int
	}{{1, +1}, {2, -1}, {3, +1}, {4, -1}} {
		if err := feedback.InsertExample(fb.id, fb.label); err != nil {
			log.Fatal(err)
		}
	}

	// Single Entity reads: "is paper 5 a database paper?"
	for _, id := range []int64{5, 6, 7, 8} {
		label, err := view.Label(id)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "no "
		if label > 0 {
			verdict = "yes"
		}
		fmt.Printf("paper %d: database? %s  (%q)\n", id, verdict, titles[id])
	}

	// All Members: "return all database papers."
	members, err := view.Members()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database papers: %v\n", members)

	// New entities arriving later are classified on insert (type-1
	// dynamic data).
	if err := papers.InsertText(9, "cost based query optimization of sql database views"); err != nil {
		log.Fatal(err)
	}
	label, err := view.Label(9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late-arriving paper 9 classified: %+d\n", label)

	st := view.Stats()
	fmt.Printf("maintenance: %d updates, %d reorganizations, band [%0.3f, %0.3f]\n",
		st.Updates, st.Reorgs, st.LowWater, st.HighWater)
}
