// Papers: the paper's motivating workload — a DBLife-style portal
// that must keep a "database papers" view fresh while crowd feedback
// streams in. Compares the naive eager strategy against Hazy's
// incremental maintenance on the same update stream and shows the
// Skiing reorganization behaviour.
//
// This example deliberately works below the Session/SQL front door
// (see examples/quickstart for that): it feeds pre-featurized vector
// entities straight into a maintenance view via hazy.NewVectorView,
// isolating the strategy comparison from tokenization and storage.
package main

import (
	"fmt"
	"log"
	"time"

	"hazy"
	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/learn"
)

func main() {
	// A DBLife-like corpus: sparse title vectors, laptop scale.
	data := dataset.Generate(dataset.DBLife.Scale(0.5))
	fmt.Printf("corpus: %d papers, vocabulary %d, avg %0.f terms/title\n",
		len(data.Entities), data.Spec.Features, data.Stats().AvgNonZero)

	warm := data.Stream(2000)
	const updates = 2000

	run := func(strategy core.Strategy) (time.Duration, hazy.Stats) {
		view, err := hazy.NewVectorView(hazy.MainMemory, strategy, "", 0,
			data.Entities, hazy.Options{
				Mode: hazy.Eager,
				SGD:  learn.SGDConfig{Eta0: 0.5},
				Warm: warm,
			})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		for i := 0; i < updates; i++ {
			ex := data.Example()
			if err := view.Update(ex.F, ex.Label); err != nil {
				log.Fatal(err)
			}
		}
		return time.Since(start), view.Stats()
	}

	naiveTime, _ := run(hazy.Naive)
	hazyTime, st := run(hazy.Hazy)

	fmt.Printf("\neager maintenance of %d feedback updates:\n", updates)
	fmt.Printf("  naive strategy: %10s  (%.0f updates/s)\n",
		naiveTime.Round(time.Millisecond), float64(updates)/naiveTime.Seconds())
	fmt.Printf("  Hazy strategy:  %10s  (%.0f updates/s)\n",
		hazyTime.Round(time.Millisecond), float64(updates)/hazyTime.Seconds())
	fmt.Printf("  speedup: %.1fx\n", naiveTime.Seconds()/hazyTime.Seconds())
	fmt.Printf("\nSkiing behaviour: %d reorganizations, %d incremental steps,\n",
		st.Reorgs, st.IncSteps)
	fmt.Printf("  %d tuples reclassified in total (vs %d for naive = N × updates),\n",
		st.Reclassified, len(data.Entities)*updates)
	fmt.Printf("  current water band [%0.4f, %0.4f] holds %d of %d tuples (%.1f%%)\n",
		st.LowWater, st.HighWater, st.BandTuples, len(data.Entities),
		100*float64(st.BandTuples)/float64(len(data.Entities)))
}
