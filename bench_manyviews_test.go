// Many-views benchmark: the PR-9 tentpole claim is that one shared
// maintenance pool serves hundreds of engined views with O(pool size)
// goroutines and no cold-view starvation. benchManyViews opens a
// catalog with hundreds of engined views, floods one hot view with
// ADD/TRAIN traffic while every other (cold) view sees occasional
// writes and snapshot reads, and measures (a) the goroutine overhead
// of all those engines, (b) mixed-traffic throughput, and (c) the
// p50/p99 latency of cold-view Flush barriers under the hot flood —
// the round-robin fairness bound. TestManyViewsEmitJSON records the
// measurement to the file named by BENCH_JSON_OUT (CI writes
// BENCH_pr9.json) so the trajectory is machine-readable and diffed
// against the committed baseline.
package hazy_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	root "hazy"
	"hazy/internal/engine"
)

const (
	manyViewsCount    = 500 // engined views in the catalog
	manyViewsHotOps   = 4000
	manyViewsColdOps  = 4   // async writes per cold view
	manyViewsSampled  = 100 // cold views whose Flush latency is sampled
	manyViewsFlushes  = 2   // timed flushes per sampled cold view
	manyViewsPoolSize = 4
)

type manyViewsResult struct {
	views            int
	extraGoroutines  int           // after attaching all engines, vs before
	peakGoroutines   int           // during the mixed-traffic phase
	totalOps         int           // writes applied across all views
	elapsed          time.Duration // mixed-traffic wall clock
	coldP50, coldP99 time.Duration
}

// benchManyViews runs the full scenario once.
func benchManyViews(tb testing.TB, views int) manyViewsResult {
	dir := tb.TempDir()
	db, err := root.OpenWith(dir, root.OpenOptions{Fsync: "off", MaintWorkers: manyViewsPoolSize})
	if err != nil {
		tb.Fatal(err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			tb.Fatal(err)
		}
	}()
	names := churnStack(tb, db, views)

	before := runtime.NumGoroutine()
	engines := make([]*engine.Engine, views)
	for i, name := range names {
		eng, err := db.AttachEngine(name, root.EngineOptions{QueueSize: 256, MaxBatch: 64})
		if err != nil {
			tb.Fatal(err)
		}
		engines[i] = eng
	}
	res := manyViewsResult{views: views}
	res.extraGoroutines = runtime.NumGoroutine() - before

	// Mixed traffic: one hot flood, light writes + reads everywhere
	// else, and timed Flush barriers on a sample of cold views.
	var nextID atomic.Int64
	nextID.Store(10_000)
	var totalOps atomic.Int64
	start := time.Now()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // hot flood on view 0
		defer wg.Done()
		hot := engines[0]
		for i := 0; i < manyViewsHotOps; i++ {
			id := nextID.Add(1)
			if err := hot.AddAsync(id, "hot view flood entity"); err != nil {
				tb.Error(err)
				return
			}
			if err := hot.TrainAsync(id, 1-2*(i%2)); err != nil {
				tb.Error(err)
				return
			}
			totalOps.Add(2)
		}
	}()

	latencies := make([]time.Duration, 0, manyViewsSampled*manyViewsFlushes)
	sampleEvery := (views - 1) / manyViewsSampled
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	wg.Add(1)
	go func() { // cold traffic across every other view
		defer wg.Done()
		for vi := 1; vi < views; vi++ {
			eng := engines[vi]
			for j := 0; j < manyViewsColdOps; j++ {
				id := nextID.Add(1)
				if err := eng.AddAsync(id, "cold view entity"); err != nil {
					tb.Error(err)
					return
				}
				if err := eng.TrainAsync(id, 1-2*(j%2)); err != nil {
					tb.Error(err)
					return
				}
				totalOps.Add(2)
				if _, err := eng.CountMembers(); err != nil { // lock-free snapshot read
					tb.Error(err)
					return
				}
			}
			if vi%sampleEvery == 0 {
				for f := 0; f < manyViewsFlushes; f++ {
					begin := time.Now()
					if err := eng.Flush(); err != nil {
						tb.Error(err)
						return
					}
					latencies = append(latencies, time.Since(begin))
				}
			}
		}
	}()

	// Goroutine peak while both traffic generators run.
	peakStop := make(chan struct{})
	peakDone := make(chan struct{})
	peak := before
	go func() {
		defer close(peakDone)
		for {
			select {
			case <-time.After(5 * time.Millisecond):
				if n := runtime.NumGoroutine(); n > peak {
					peak = n
				}
			case <-peakStop:
				return
			}
		}
	}()
	wg.Wait()
	close(peakStop)
	<-peakDone
	res.peakGoroutines = peak

	// Drain everything so totalOps reflects applied work.
	for _, eng := range engines {
		if err := eng.Drain(); err != nil {
			tb.Fatal(err)
		}
	}
	res.elapsed = time.Since(start)
	res.totalOps = int(totalOps.Load())

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	if len(latencies) > 0 {
		res.coldP50 = latencies[len(latencies)/2]
		res.coldP99 = latencies[len(latencies)*99/100]
	}
	return res
}

// checkManyViews asserts the structural claims that must hold on any
// machine: goroutines O(pool size), not O(views), and cold flushes
// that complete (bounded) under the hot flood.
func checkManyViews(tb testing.TB, res manyViewsResult) {
	// Attached-but-idle engines own no goroutines; during traffic the
	// process adds pool workers + the two generators + test plumbing,
	// never one goroutine per view.
	if res.extraGoroutines > manyViewsPoolSize+8 {
		tb.Fatalf("attaching %d engines grew goroutines by %d — engines must be parked task sources", res.views, res.extraGoroutines)
	}
	if res.peakGoroutines > res.views/2 {
		tb.Fatalf("peak goroutines %d with %d views — maintenance is not O(pool size)", res.peakGoroutines, res.views)
	}
	if res.coldP99 <= 0 {
		tb.Fatal("no cold-view flush latencies sampled")
	}
	if res.coldP99 > 30*time.Second {
		tb.Fatalf("cold-view flush p99 = %v under hot flood — starved", res.coldP99)
	}
}

func BenchmarkManyViews(b *testing.B) {
	views := manyViewsCount
	if testing.Short() {
		views = 100
	}
	for i := 0; i < b.N; i++ {
		res := benchManyViews(b, views)
		checkManyViews(b, res)
		b.ReportMetric(float64(res.elapsed.Nanoseconds())/float64(res.totalOps), "ns/write")
		b.ReportMetric(float64(res.coldP99.Microseconds()), "coldflush-p99-us")
		b.ReportMetric(float64(res.peakGoroutines), "peak-goroutines")
	}
}

// TestManyViewsEmitJSON runs the 500-view scenario once and writes
// the measurement to BENCH_JSON_OUT (CI: BENCH_pr9.json). Guarded
// keys: per-write latency and the cold-view flush percentiles — the
// no-starvation bound the scheduler must keep.
func TestManyViewsEmitJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT=<path> to emit the many-views benchmark JSON")
	}
	res := benchManyViews(t, manyViewsCount)
	checkManyViews(t, res)
	report := map[string]any{
		"bench":               "ManyViews",
		"views":               res.views,
		"cores":               runtime.GOMAXPROCS(0),
		"pool_workers":        manyViewsPoolSize,
		"extra_goroutines":    res.extraGoroutines,
		"peak_goroutines":     res.peakGoroutines,
		"total_write_ops":     res.totalOps,
		"mixedwrite_ns_op":    res.elapsed.Nanoseconds() / int64(res.totalOps),
		"coldflush_p50_ns_op": res.coldP50.Nanoseconds(),
		"coldflush_p99_ns_op": res.coldP99.Nanoseconds(),
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}
