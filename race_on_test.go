//go:build race

package hazy_test

// raceEnabled reports whether the race detector is instrumenting
// this build; timing-sensitive assertions stand down when it is.
const raceEnabled = true
