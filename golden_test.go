// Golden end-to-end test for the Session API's one-front-door
// guarantee: the same .sql script produces byte-identical transcripts
// through (a) an embedded hazy.Session driven by the REPL loop —
// exactly what hazyql -f runs — and (b) a live TCP server driven
// statement by statement through the SQL wire command, with the
// script itself attaching concurrent maintenance engines to both of
// its views. The external test package breaks the import cycle
// hazy ← internal/server.
package hazy_test

import (
	"bytes"
	"net"
	"os"
	"regexp"
	"testing"

	root "hazy"
	"hazy/internal/repl"
	"hazy/internal/server"
)

const goldenScript = "testdata/golden.sql"

// runEmbedded drives the script through an in-process Session — the
// hazyql -f code path (cmd/hazyql calls the same repl.Run).
func runEmbedded(t *testing.T) string {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	f, err := os.Open(goldenScript)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	if err := repl.Run(db.NewSession(), f, &out, false); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// runOverTCP drives the script through a fresh hazyd-shaped server:
// every statement goes over the wire via the SQL command, including
// the ATTACH ENGINE statements, so the server ends up with two
// concurrently-engined views mid-script.
func runOverTCP(t *testing.T) string {
	t.Helper()
	db, err := root.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := server.New(db, server.Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close(); srv.Close() })
	go srv.Serve(l) //nolint:errcheck — ends with listener
	c, err := server.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	f, err := os.Open(goldenScript)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out bytes.Buffer
	if err := repl.Run(c, f, &out, false); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// analyzeTime matches the wall-time annotation EXPLAIN ANALYZE puts
// on every plan node. Row counts are deterministic and compared
// verbatim; times are wall-clock and normalized before comparison.
var analyzeTime = regexp.MustCompile(`time=\d+us`)

func TestGoldenScriptIdenticalAcrossSurfaces(t *testing.T) {
	embedded := analyzeTime.ReplaceAllString(runEmbedded(t), "time=?us")
	wire := analyzeTime.ReplaceAllString(runOverTCP(t), "time=?us")
	if embedded != wire {
		t.Fatalf("transcripts diverge:\n-- embedded --\n%s\n-- tcp --\n%s", embedded, wire)
	}
	// The transcript must contain real answers, not errors.
	if bytes.Contains([]byte(embedded), []byte("error:")) {
		t.Fatalf("golden transcript contains errors:\n%s", embedded)
	}
	// Sanity-pin a few lines the script's classification must get
	// right: paper 5 (databases) is +1 and doc 14 (spam) is +1.
	for _, want := range []string{"ATTACH ENGINE\n", "DETACH ENGINE\n", "(rows=", "time=?us"} {
		if !bytes.Contains([]byte(embedded), []byte(want)) {
			t.Fatalf("transcript missing %q:\n%s", want, embedded)
		}
	}
}
