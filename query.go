package hazy

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"hazy/internal/core"
	"hazy/internal/exec"
	"hazy/internal/obs"
	"hazy/internal/relation"
	"hazy/internal/sqlmini"
)

// This file binds the catalog to the streaming executor: it
// implements exec's ViewSource / TableSource / Catalog interfaces
// over the DB's views, engines, and tables, and wraps a built plan as
// the Rows cursor the Session's query surface returns.

// Rows is a streaming statement result: column names up front, then
// one rendered row per Next. SELECT rows flow out of the vectorized
// operator pipeline a batch (~1024 rows) at a time; Rows is the
// row-at-a-time boundary — it holds the current batch and deals one
// rendered row per Next, refilling when the batch runs dry — so the
// SQL surface and wire protocol see exactly the row stream they
// always did. Nothing is materialized beyond what the plan itself
// requires (a Sort, and nothing else), which is what lets the server
// write a large result to the wire row by row. Callers must Close
// (idempotent); DDL/DML statements yield a Rows with only Msg set.
type Rows struct {
	cols   []string
	msg    string
	live   bool
	op     exec.Operator
	batch  *exec.Batch // current batch pulled from op (pooled)
	bi     int         // next unread row within batch
	static [][]string  // pre-rendered rows (EXPLAIN, Materialize)
	i      int
	closed bool
}

// Live reports whether the plan reads live (non-snapshot) view state
// and therefore needs the caller's serialization for as long as it
// streams. Snapshot-bound plans and table plans are not live: they
// read immutable state or internally locked tables and may stream
// after the caller's statement lock is released.
func (r *Rows) Live() bool { return r.live }

// Materialize drains the plan into memory so the Rows stops touching
// its sources — the server uses it to bound how long a live plan
// holds the statement mutex to the drain, not the client's read pace.
func (r *Rows) Materialize() error {
	if r.op == nil || r.closed {
		return nil
	}
	op := r.op
	r.op = nil
	defer op.Close()
	b := r.batch
	r.batch = nil
	if b == nil {
		b = exec.NewBatch()
	}
	defer b.Release()
	for {
		for ; r.bi < b.Len(); r.bi++ {
			out := make([]string, b.Width())
			b.RenderRow(r.bi, out)
			r.static = append(r.static, out)
		}
		if err := op.NextBatch(b); err != nil {
			return err
		}
		r.bi = 0
		if b.Len() == 0 {
			return nil
		}
	}
}

// Cols returns the result's column names (nil for DDL/DML).
func (r *Rows) Cols() []string { return r.cols }

// Msg returns the DDL/DML acknowledgment ("" for result sets).
func (r *Rows) Msg() string { return r.msg }

// Next returns the next rendered row, or ok=false at end of stream.
func (r *Rows) Next() ([]string, bool, error) {
	if r.closed {
		return nil, false, nil
	}
	if r.op != nil {
		if r.batch == nil {
			r.batch = exec.NewBatch()
		}
		if r.bi >= r.batch.Len() {
			if err := r.op.NextBatch(r.batch); err != nil {
				return nil, false, err
			}
			r.bi = 0
			if r.batch.Len() == 0 {
				return nil, false, nil
			}
		}
		out := make([]string, r.batch.Width())
		r.batch.RenderRow(r.bi, out)
		r.bi++
		return out, true, nil
	}
	if r.i >= len(r.static) {
		return nil, false, nil
	}
	row := r.static[r.i]
	r.i++
	return row, true, nil
}

// Close releases the plan's resources (cursors, page pins).
func (r *Rows) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.batch != nil {
		r.batch.Release()
		r.batch = nil
	}
	if r.op != nil {
		return r.op.Close()
	}
	return nil
}

// sessionCatalog resolves FROM names for the planner. Each lookup
// binds view and engine together (one lock acquisition), and an
// engined view binds the engine's published snapshot — every operator
// of the resulting plan then reads one immutable state, lock-free,
// however long the result streams. Binding a live (unmanaged) view is
// recorded so the result can say it needs serialization (Rows.Live).
type sessionCatalog struct {
	s    *Session
	live bool
}

func (c *sessionCatalog) View(name string) (exec.ViewSource, bool, error) {
	cv, eng, err := c.s.db.viewAndEngine(name)
	if err != nil {
		return nil, false, nil // no such view; the planner tries tables
	}
	if eng != nil {
		return &snapshotSource{name: name, snap: eng.Snapshot()}, true, nil
	}
	// On a replica, plans bind the published snapshot — the applier
	// owns the live structure — so replica reads are lock-free and
	// never block on (or observe half of) an applying batch.
	if snap := cv.pub.Load(); snap != nil {
		return &snapshotSource{name: name, snap: snap}, true, nil
	}
	c.live = true
	return &liveSource{cv: cv}, true, nil
}

func (c *sessionCatalog) Table(name string) (exec.TableSource, bool, error) {
	c.s.db.mu.RLock()
	defer c.s.db.mu.RUnlock()
	if t, ok := c.s.db.tables[name]; ok {
		return &tableSource{name: name, tbl: t.tbl, cols: []exec.Column{
			{Name: "id", Kind: exec.KInt},
			{Name: t.TextColumn(), Kind: exec.KString},
		}}, true, nil
	}
	if t, ok := c.s.db.examples[name]; ok {
		return &tableSource{name: name, tbl: t.tbl, cols: []exec.Column{
			{Name: "id", Kind: exec.KInt},
			{Name: "label", Kind: exec.KInt},
		}}, true, nil
	}
	return nil, false, nil
}

// coreCursor adapts a core.RowCursor to the executor's batch
// contract: each NextBatch bulk-fills a scratch entry slice from the
// source (one core-level call per run of rows, a leaf's worth at a
// time for the on-disk layout) and transposes it into dst's columns.
// The scratch persists across calls, so a scan allocates it once.
type coreCursor struct {
	c   core.RowCursor
	buf []core.SnapEntry
}

func (c *coreCursor) NextBatch(dst *exec.Batch) error {
	for {
		want := dst.Room()
		if want == 0 {
			return nil
		}
		if cap(c.buf) < want {
			c.buf = make([]core.SnapEntry, want)
		}
		n, err := c.c.NextBatch(c.buf[:want])
		if err != nil {
			return err
		}
		if n == 0 {
			return nil
		}
		for _, e := range c.buf[:n] {
			dst.AppendViewRow(e.ID, int64(e.Label), e.Eps)
		}
	}
}

func (c *coreCursor) Close() { c.c.Close() }

// entriesCursor streams a snapshot's entry slice.
type entriesCursor struct {
	entries []core.SnapEntry
	i       int
}

func (c *entriesCursor) NextBatch(dst *exec.Batch) error {
	for c.i < len(c.entries) && dst.Room() > 0 {
		e := c.entries[c.i]
		c.i++
		dst.AppendViewRow(e.ID, int64(e.Label), e.Eps)
	}
	return nil
}

func (c *entriesCursor) Close() {}

// snapshotSource serves an engined view's plan from one published
// snapshot: immutable, so safe from any goroutine with no locks, and
// consistent for the whole statement however long it streams.
type snapshotSource struct {
	name string
	snap *core.Snapshot
}

func (s *snapshotSource) Name() string    { return s.name }
func (s *snapshotSource) Origin() string  { return "snapshot" }
func (s *snapshotSource) Clustered() bool { return s.snap.Clustered() }

func (s *snapshotSource) Label(id int64) (int, error)   { return s.snap.Label(id) }
func (s *snapshotSource) Eps(id int64) (float64, error) { return s.snap.EpsOf(id) }
func (s *snapshotSource) Members() ([]int64, error)     { return s.snap.Members(), nil }
func (s *snapshotSource) CountMembers() (int, error)    { return s.snap.CountMembers(), nil }
func (s *snapshotSource) MostUncertain(k int) ([]int64, error) {
	return s.snap.MostUncertain(k)
}

func (s *snapshotSource) Scan() (exec.Cursor, error) {
	return &entriesCursor{entries: s.snap.Entries()}, nil
}

func (s *snapshotSource) ScanEps(lo, hi float64) (exec.Cursor, error) {
	c, err := s.snap.ScanEps(lo, hi)
	if err != nil {
		return nil, err
	}
	return &coreCursor{c: c}, nil
}

// liveSource serves an unmanaged view's plan from the live structure.
// Like every non-engined read it relies on the caller's serialization
// (the server's statement mutex, or single-threaded embedded use).
type liveSource struct {
	cv *ClassView
}

func (s *liveSource) Name() string   { return s.cv.Name() }
func (s *liveSource) Origin() string { return "live" }

func (s *liveSource) epsIndex() (core.EpsIndexed, bool) {
	ei, ok := s.cv.view.(core.EpsIndexed)
	return ei, ok && ei.Clustered()
}

func (s *liveSource) Clustered() bool {
	_, ok := s.epsIndex()
	return ok
}

func (s *liveSource) Label(id int64) (int, error)   { return s.cv.Label(id) }
func (s *liveSource) Eps(id int64) (float64, error) { return s.cv.Eps(id) }
func (s *liveSource) Members() ([]int64, error)     { return s.cv.Members() }
func (s *liveSource) CountMembers() (int, error)    { return s.cv.CountMembers() }

func (s *liveSource) MostUncertain(k int) ([]int64, error) {
	u, ok := s.cv.Core().(Uncertain)
	if !ok {
		return nil, fmt.Errorf("hazy: view %q does not support uncertainty ranking", s.cv.Name())
	}
	return u.MostUncertain(k)
}

func (s *liveSource) Scan() (exec.Cursor, error) {
	if ei, ok := s.epsIndex(); ok {
		c, err := ei.ScanEps(math.Inf(-1), math.Inf(1))
		if err != nil {
			return nil, err
		}
		return &coreCursor{c: c}, nil
	}
	// Naive layouts keep no eps clustering to stream from; fall back
	// to the members set joined against the entity table — the
	// pre-executor full-scan path — materialized at open.
	ids, err := s.cv.Members()
	if err != nil {
		return nil, err
	}
	member := make(map[int64]bool, len(ids))
	for _, id := range ids {
		member[id] = true
	}
	var rows []exec.Row
	err = s.cv.Entities().Scan(func(id int64, _ string) error {
		label := int64(-1)
		if member[id] {
			label = 1
		}
		rows = append(rows, exec.Row{exec.IntVal(id), exec.IntVal(label), exec.FloatVal(0)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &sliceCursor{rows: rows}, nil
}

func (s *liveSource) ScanEps(lo, hi float64) (exec.Cursor, error) {
	ei, ok := s.epsIndex()
	if !ok {
		return nil, fmt.Errorf("hazy: view %q has no eps clustering", s.cv.Name())
	}
	c, err := ei.ScanEps(lo, hi)
	if err != nil {
		return nil, err
	}
	return &coreCursor{c: c}, nil
}

// Stripes exposes the live view's partition count so the planner can
// lower eps scans onto the scatter-gather merge operator; unstriped
// layouts report 1 and keep the single-cursor plans. (Engined views
// never reach here — their snapshots are already merged.)
func (s *liveSource) Stripes() int {
	if sv, ok := s.cv.view.(*core.StripedView); ok {
		return sv.Stripes()
	}
	return 1
}

// ScanEpsStripe streams one stripe's share of an eps band.
func (s *liveSource) ScanEpsStripe(i int, lo, hi float64) (exec.Cursor, error) {
	sv, ok := s.cv.view.(*core.StripedView)
	if !ok {
		return nil, fmt.Errorf("hazy: view %q is not striped", s.cv.Name())
	}
	c, err := sv.ScanEpsStripe(i, lo, hi)
	if err != nil {
		return nil, err
	}
	return &coreCursor{c: c}, nil
}

var _ exec.StripedSource = (*liveSource)(nil)

// sliceCursor streams pre-built rows (the naive-layout fallback and
// table scans, which buffer at open because the underlying heap scan
// holds the table's read lock for its duration).
type sliceCursor struct {
	rows []exec.Row
	i    int
}

func (c *sliceCursor) NextBatch(dst *exec.Batch) error {
	for c.i < len(c.rows) && dst.Room() > 0 {
		dst.AppendRow(c.rows[c.i])
		c.i++
	}
	return nil
}

func (c *sliceCursor) Close() {}

// tableSource serves entity and examples tables: a primary-key point
// read and a heap-order scan, both through the relation layer's own
// locking (safe against an engine's concurrent durable inserts).
type tableSource struct {
	name string
	tbl  *relation.Table
	cols []exec.Column
}

func (s *tableSource) Name() string           { return s.name }
func (s *tableSource) Columns() []exec.Column { return s.cols }

func (s *tableSource) row(tup relation.Tuple) exec.Row {
	row := make(exec.Row, len(s.cols))
	for i, c := range s.cols {
		if c.Kind == exec.KString {
			row[i] = exec.StrVal(tup[i].(string))
		} else {
			row[i] = exec.IntVal(tup[i].(int64))
		}
	}
	return row
}

func (s *tableSource) Get(id int64) (exec.Row, bool, error) {
	if !s.tbl.Has(id) {
		return nil, false, nil
	}
	tup, err := s.tbl.Get(id)
	if err != nil {
		return nil, false, err
	}
	return s.row(tup), true, nil
}

func (s *tableSource) Scan() (exec.Cursor, error) {
	rows := make([]exec.Row, 0, s.tbl.Len())
	err := s.tbl.Scan(func(tup relation.Tuple) error {
		rows = append(rows, s.row(tup))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &sliceCursor{rows: rows}, nil
}

// Query parses one SQL statement and returns its result as a
// streaming Rows cursor. SELECTs are planned onto the catalog's read
// surfaces and stream row at a time; EXPLAIN SELECT returns the plan
// text without executing it; every other statement executes
// immediately and returns its acknowledgment in Msg.
func (s *Session) Query(src string) (*Rows, error) {
	st, err := sqlmini.Parse(src)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case sqlmini.Select:
		cat := &sessionCatalog{s: s}
		plan, err := exec.Build(st, cat)
		if err != nil {
			return nil, err
		}
		if err := plan.Root.Open(); err != nil {
			plan.Root.Close()
			return nil, err
		}
		return &Rows{cols: plan.Cols, op: plan.Root, live: cat.live}, nil
	case sqlmini.Explain:
		plan, err := exec.Build(st.Sel, &sessionCatalog{s: s})
		if err != nil {
			return nil, err
		}
		if st.Analyze {
			// EXPLAIN ANALYZE: wrap every node in the counting/timing
			// decorator, run the plan to completion (rows are counted,
			// not returned), and render the annotated tree. The result
			// is static, so the server can ship it under its statement
			// lock like any other non-live result.
			an := exec.Instrument(plan.Root, s.db.metrics)
			if err := drainPlan(an); err != nil {
				return nil, err
			}
			plan.Root = an
		}
		lines := plan.Explain()
		rows := make([][]string, len(lines))
		for i, l := range lines {
			rows[i] = []string{l}
		}
		return &Rows{cols: []string{"plan"}, static: rows}, nil
	case sqlmini.ShowStats:
		return s.showStats(st.View), nil
	default:
		res, err := s.execStmt(st)
		if err != nil {
			return nil, err
		}
		return &Rows{msg: res.Msg}, nil
	}
}

// drainPlan runs an instrumented plan to completion: Open, exhaust
// batch by batch, Close — the execution half of EXPLAIN ANALYZE.
func drainPlan(op exec.Operator) error {
	if err := op.Open(); err != nil {
		op.Close()
		return err
	}
	b := exec.NewBatch()
	defer b.Release()
	for {
		if err := op.NextBatch(b); err != nil {
			op.Close()
			return err
		}
		if b.Len() == 0 {
			return op.Close()
		}
	}
}

// showStats renders the metrics registry as (metric, value) rows —
// the SHOW STATS [FOR view] statement. Counters and gauges are one
// row each; histograms surface as _count and _sum rows. FOR x keeps
// collectors labeled view=x, plus any named hazy_x_* — so subsystem
// families without a view label (SHOW STATS FOR replica) select too.
func (s *Session) showStats(view string) *Rows {
	var rows [][]string
	for _, sm := range s.db.metrics.Snapshot() {
		if view != "" && !hasLabel(sm.Labels, "view", view) &&
			!strings.HasPrefix(sm.Name, "hazy_"+view+"_") {
			continue
		}
		lbl := obs.FormatLabels(sm.Labels)
		if sm.Kind == obs.KindHistogram {
			rows = append(rows,
				[]string{sm.Name + "_count" + lbl, strconv.FormatInt(sm.Value, 10)},
				[]string{sm.Name + "_sum" + lbl, strconv.FormatUint(sm.Sum, 10)})
			continue
		}
		rows = append(rows, []string{sm.Name + lbl, strconv.FormatInt(sm.Value, 10)})
	}
	return &Rows{cols: []string{"metric", "value"}, static: rows}
}

// hasLabel reports whether labels contains name=value.
func hasLabel(labels []obs.Label, name, value string) bool {
	for _, l := range labels {
		if l.Name == name && l.Value == value {
			return true
		}
	}
	return false
}
