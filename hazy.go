// Package hazy is a from-scratch Go reproduction of the Hazy system
// ("Incrementally Maintaining Classification using an RDBMS",
// Koc & Ré, PVLDB 4(5), 2011): classification views maintained inside
// a relational engine under a stream of training-example updates.
//
// A classification view labels every entity of an entity table with
// ±1 using a linear model (SVM, logistic regression, or ridge)
// trained incrementally from an examples table. Hazy keeps the view
// fresh cheaply by clustering entities on their signed distance to
// the decision hyperplane (eps), maintaining low/high watermarks from
// Hölder's inequality so that only tuples inside [lw, hw] can have
// changed label, and reorganizing the clustering per the Skiing
// online strategy, which is 2-competitive as data grows.
//
// The front door is the Session API, which executes the paper's SQL
// dialect (§2.1) against the whole catalog — the same statements work
// embedded, in the hazyql REPL, and over the wire through hazyd's
// SQL command:
//
//	db, _ := hazy.Open(dir)
//	defer db.Close()
//	sess := db.NewSession()
//	sess.Exec(`CREATE TABLE papers (id BIGINT, title TEXT) KEY id`)
//	sess.Exec(`CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id`)
//	sess.Exec(`INSERT INTO papers VALUES (1, 'query optimization in relational databases')`)
//	sess.Exec(`CREATE CLASSIFICATION VIEW labeled_papers KEY id
//	           ENTITIES FROM papers KEY id
//	           EXAMPLES FROM feedback KEY id LABEL label
//	           FEATURE FUNCTION tf_bag_of_words USING SVM`)
//	sess.Exec(`INSERT INTO feedback VALUES (1, 1)`) // retrains + maintains the view
//	res, _ := sess.Exec(`SELECT class FROM labeled_papers WHERE id = 1`)
//	sess.Exec(`SELECT id FROM labeled_papers ORDER BY ABS(eps) LIMIT 5`) // active-learning picks
//
// SELECTs are lowered by the internal/exec planner onto the physical
// structure that answers them — id point reads, the members set, or
// an eps-range scan of the clustered layout — and stream row at a
// time (Session.Query); EXPLAIN SELECT prints the chosen plan.
//
// The equivalent Go-level calls (CreateEntityTable,
// CreateClassificationView, ClassView.Label, …) remain available and
// interoperate with SQL — both surfaces share one catalog, which is
// persisted in the database directory's manifest and recovered by
// Open, views included.
//
// For concurrent serving, attach the maintenance engine to a view
// (AttachEngine, or the SQL statement ATTACH ENGINE TO <view>):
// reads then come lock-free from published snapshots and writes are
// batched through a bounded queue, whichever surface they arrive on.
//
// Durability: every table mutation is appended to a write-ahead log
// (internal/wal) before it touches heap pages, and Open replays the
// log tail past the last checkpoint — a crash at any byte offset
// reopens the database as a prefix of the acknowledged writes, with
// the views recomputed to match. OpenWith selects the fsync policy
// ("always" for power-loss durability with group commit, "off" —
// the embedded default — for process-crash durability only); the SQL
// statement CHECKPOINT, DB.Checkpoint, and WAL segment rotation all
// flush the catalog and prune the log.
package hazy

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"hazy/internal/core"
	"hazy/internal/engine"
	"hazy/internal/feature"
	"hazy/internal/learn"
	"hazy/internal/obs"
	"hazy/internal/relation"
	"hazy/internal/replica"
	"hazy/internal/sched"
	"hazy/internal/storage"
	"hazy/internal/vector"
	"hazy/internal/wal"
)

// Re-exported architecture, strategy, and mode selectors.
const (
	MainMemory = core.MainMemory
	OnDisk     = core.OnDisk
	Hybrid     = core.HybridArch

	Naive = core.Naive
	Hazy  = core.HazyStrategy

	Eager = core.Eager
	Lazy  = core.Lazy
)

// Entity is re-exported for direct (vector) views.
type Entity = core.Entity

// Stats is re-exported from the maintenance core.
type Stats = core.Stats

// DB is a Hazy database: a catalog of relational tables, the
// classification views maintained over them, and the registry of
// concurrent maintenance engines attached to those views.
type DB struct {
	dir          string
	rel          *relation.DB
	registry     *feature.Registry
	metrics      *obs.Registry
	pool         *sched.Pool // shared maintenance scheduler for all engines and striped views
	vfs          storage.VFS
	fsync        wal.SyncMode
	defaultParts int

	// mu guards the catalog maps, the engine registry, and manifest
	// writes. View maintenance itself is synchronized by the caller
	// (single-threaded embedded use, the server's statement lock, or
	// an attached engine's goroutine).
	mu       sync.RWMutex
	views    map[string]*ClassView
	tables   map[string]*EntityTable
	examples map[string]*ExampleTable
	specs    map[string]ViewSpec       // persisted view declarations
	engines  map[string]*engine.Engine // view name → attached engine
	pending  []ViewSpec                // manifest views awaiting a custom feature function
	creating map[string]bool           // view names reserved by an in-flight create

	// Replication (replication.go). stmtMu serializes whole statements
	// across every writer surface — the server shares it, and on a
	// replica the log applier holds it per applied record — so shipped
	// records interleave with local statements, never with half of one.
	// readOnly flips on while this process serves as a replica; repl is
	// registered at open so the replica metric names surface everywhere.
	stmtMu   sync.Mutex
	readOnly atomic.Bool
	repl     *replica.Metrics
	shipper  *replica.Shipper
	applier  *replica.Applier
}

// OpenOptions configures a database's durability machinery.
type OpenOptions struct {
	// Fsync is the write-ahead-log commit policy: "always" (every
	// acknowledged write is fsynced — group-committed, so an engine
	// batch pays one fsync) or "off" (appends reach the OS
	// synchronously but are never fsynced: acknowledged writes
	// survive a process crash, not power loss). Default "off" —
	// embedded callers favor throughput; hazyd defaults to "always".
	Fsync string
	// WALSegmentBytes caps a log segment before rotation; each
	// rotation triggers a catalog checkpoint, bounding recovery work
	// to about one segment of replay. Default 4 MiB.
	WALSegmentBytes int64
	// VFS is the file layer beneath every pager and log segment
	// (default the real filesystem). The crash-safety tests
	// interpose internal/storage/faultfs here.
	VFS storage.VFS
	// DefaultPartitions stripes every Hazy-strategy view declared
	// WITHOUT an explicit PARTITIONS clause — whatever its
	// architecture — into this many hash partitions (parallel
	// reorganization and rescans across a worker pool). 0 or 1 leaves
	// such views unstriped. The resolved count is persisted with the
	// view's declaration, so reopening without the option keeps
	// existing views striped as declared.
	DefaultPartitions int
	// MaintWorkers sizes the catalog's shared maintenance pool — the
	// single scheduler every attached engine's batches and every
	// striped view's per-stripe tasks run on, so total maintenance
	// goroutines stay O(MaintWorkers) however many views are attached.
	// 0 (the default) uses GOMAXPROCS.
	MaintWorkers int
}

// Open creates or reopens a database directory with default
// durability options. The catalog manifest records every table's kind
// (entity vs examples) and every view's declaration, so Open recovers
// the tables — replaying the write-ahead log's tail past the last
// checkpoint, so a crash mid-batch loses at most the unlogged suffix
// — and re-declares each classification view. The view contents
// (labels, eps clustering, watermarks) are recomputed from the
// recovered entities and examples (§3.5.1), never stored, so the
// ε-index always agrees with the recovered tables. Directories
// written before the manifest existed fall back to a schema-shape
// heuristic for table kinds and recover no views.
func Open(dir string) (*DB, error) { return OpenWith(dir, OpenOptions{}) }

// OpenWith is Open with explicit durability options.
func OpenWith(dir string, opts OpenOptions) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hazy: %w", err)
	}
	mode := wal.SyncOff
	if opts.Fsync != "" {
		var err error
		if mode, err = wal.ParseSyncMode(opts.Fsync); err != nil {
			return nil, fmt.Errorf("hazy: %w", err)
		}
	}
	vfs := opts.VFS
	if vfs == nil {
		vfs = storage.OS
	}
	metrics := obs.NewRegistry()
	pool := sched.NewPool(opts.MaintWorkers, metrics)
	rel, err := relation.OpenDBWith(dir, 512, relation.Options{
		VFS:             vfs,
		Fsync:           mode,
		WALSegmentBytes: opts.WALSegmentBytes,
		Metrics:         metrics,
	})
	if err != nil {
		pool.Close()
		return nil, err
	}
	// A failed open must release the log and pager handles it
	// acquired — without checkpointing, which could overwrite a good
	// manifest with partially recovered state — and stop the
	// maintenance pool it started.
	opened := false
	defer func() {
		if !opened {
			rel.Abort()
			pool.Close()
		}
	}()
	db := &DB{
		dir:          dir,
		rel:          rel,
		registry:     feature.NewRegistry(),
		metrics:      metrics,
		pool:         pool,
		vfs:          vfs,
		fsync:        mode,
		defaultParts: opts.DefaultPartitions,
		views:        map[string]*ClassView{},
		tables:       map[string]*EntityTable{},
		examples:     map[string]*ExampleTable{},
		specs:        map[string]ViewSpec{},
		engines:      map[string]*engine.Engine{},
		creating:     map[string]bool{},
	}
	db.repl = replica.NewMetrics(metrics)
	names, err := db.rel.Recover()
	if err != nil {
		return nil, err
	}
	meta, err := loadMeta(vfs, dir)
	if err != nil {
		return nil, err
	}
	kinds := map[string]metaTable{}
	if meta != nil {
		for _, mt := range meta.Tables {
			kinds[mt.Name] = mt
		}
	}
	for _, name := range names {
		tbl, err := db.rel.Table(name)
		if err != nil {
			return nil, err
		}
		if mt, ok := kinds[name]; ok {
			switch mt.Kind {
			case "entity":
				col := tbl.Schema().ColIndex(mt.TextCol)
				if col < 0 {
					return nil, fmt.Errorf("hazy: manifest table %q: no column %q", name, mt.TextCol)
				}
				db.tables[name] = &EntityTable{db: db, tbl: tbl, textCol: col}
			case "example":
				db.examples[name] = &ExampleTable{db: db, tbl: tbl}
			default:
				return nil, fmt.Errorf("hazy: manifest table %q: unknown kind %q", name, mt.Kind)
			}
			continue
		}
		// Pre-manifest directory: guess the kind from the schema shape.
		schema := tbl.Schema()
		if len(schema.Cols) != 2 {
			continue
		}
		switch schema.Cols[1].Type {
		case relation.TString:
			db.tables[name] = &EntityTable{db: db, tbl: tbl, textCol: 1}
		case relation.TInt64:
			db.examples[name] = &ExampleTable{db: db, tbl: tbl}
		}
	}
	if meta != nil {
		for _, mv := range meta.Views {
			spec, err := mv.spec()
			if err != nil {
				return nil, err
			}
			// Views over app-registered feature functions (App. A.2)
			// cannot be rebuilt yet — the app registers its functions
			// only after Open returns. Defer them instead of failing
			// the whole open; RecoverPendingViews finishes the job.
			ffName := spec.FeatureFunction
			if ffName == "" {
				ffName = "tf_bag_of_words"
			}
			if !db.registry.Has(ffName) {
				db.pending = append(db.pending, spec)
				continue
			}
			if _, err := db.createClassificationView(spec, false); err != nil {
				return nil, fmt.Errorf("hazy: recover view %q: %w", mv.Name, err)
			}
		}
	}
	// Segment rotations checkpoint the whole catalog (both manifests
	// plus flushed pages), keeping the replayable log tail about one
	// segment long.
	db.rel.SetCheckpointHook(db.Checkpoint)
	opened = true
	return db, nil
}

// Checkpoint makes the whole catalog durable right now: the hazy
// manifest (table kinds + view declarations), the relation manifest
// (schemas, heap page lists, and the WAL position they cover), and
// every dirty heap page are written out, and log segments below the
// recorded position are pruned. Recovery after a checkpoint replays
// only the log tail written since. It runs automatically on WAL
// segment rotation and at Close; the SQL statement CHECKPOINT invokes
// it on demand.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	err := db.saveMeta()
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return db.rel.Checkpoint()
}

// PendingViews lists manifest views whose recovery was deferred
// because their feature function was not registered at Open time.
func (db *DB) PendingViews() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.pending))
	for _, spec := range db.pending {
		out = append(out, spec.Name)
	}
	return out
}

// RecoverPendingViews re-declares the manifest views deferred by Open
// for lack of their (custom) feature function. Call it after
// registering the functions with Registry().Register. Views whose
// functions are still missing remain pending; the first rebuild
// error is returned.
func (db *DB) RecoverPendingViews() error {
	db.mu.RLock()
	pending := db.pending
	db.mu.RUnlock()
	var remaining []ViewSpec
	var first error
	for _, spec := range pending {
		ffName := spec.FeatureFunction
		if ffName == "" {
			ffName = "tf_bag_of_words"
		}
		if !db.registry.Has(ffName) {
			remaining = append(remaining, spec)
			continue
		}
		if _, err := db.createClassificationView(spec, false); err != nil {
			remaining = append(remaining, spec)
			if first == nil {
				first = fmt.Errorf("hazy: recover view %q: %w", spec.Name, err)
			}
		}
	}
	db.mu.Lock()
	db.pending = remaining
	db.mu.Unlock()
	return first
}

// Close drains and detaches every attached maintenance engine, writes
// the catalog manifest, and flushes and closes all storage. It
// returns the first error — including any unreported asynchronous
// write failure surfaced by an engine's final drain.
func (db *DB) Close() error {
	// Replication machinery first: the applier must stop mutating
	// before the engines drain and the catalog closes, and the shipper
	// must release its Followers before the log closes.
	db.mu.Lock()
	shipper, applier := db.shipper, db.applier
	db.shipper, db.applier = nil, nil
	db.mu.Unlock()
	if applier != nil {
		applier.Stop() //nolint:errcheck — a terminal stream error doesn't block close
	}
	if shipper != nil {
		shipper.Close() //nolint:errcheck — listener teardown
	}
	db.mu.RLock()
	engines := make([]*engine.Engine, 0, len(db.engines))
	for _, eng := range db.engines {
		engines = append(engines, eng)
	}
	db.mu.RUnlock()
	var first error
	for _, eng := range engines {
		if err := eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	db.mu.Lock()
	if err := db.saveMeta(); err != nil && first == nil {
		first = err
	}
	db.mu.Unlock()
	if err := db.rel.Close(); err != nil && first == nil {
		first = err
	}
	// The pool goes down last: the engine drains above were its final
	// clients, and a post-close straggler still runs via the pool's
	// degraded fallback rather than hanging.
	db.pool.Close()
	return first
}

// Metrics exposes the database's observability registry: every layer
// (engines, view maintenance, WAL, buffer pools, analyzed query
// operators) registers its collectors here. hazyd serves it as
// /metrics and /statsz; SHOW STATS renders it as rows.
func (db *DB) Metrics() *obs.Registry { return db.metrics }

// Registry exposes the feature-function registry so applications can
// register custom functions (paper App. A.2).
func (db *DB) Registry() *feature.Registry { return db.registry }

// EntityTable is a relational table of (id BIGINT, text TEXT) rows —
// the In relation a classification view is declared over.
type EntityTable struct {
	db      *DB
	tbl     *relation.Table
	textCol int
}

// CreateEntityTable creates a table with key column "id" and one text
// column, and records it in the catalog manifest. The DDL also rides
// the write-ahead log as a metadata record, so replicas tailing this
// database reconcile it in stream order — before any row that
// references it.
func (db *DB) CreateEntityTable(name, textColumn string) (*EntityTable, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	et, err := db.createEntityTable(name, textColumn)
	if err != nil {
		return nil, err
	}
	return et, db.rel.CommitLog()
}

// createEntityTable is CreateEntityTable without the read-only guard
// and the commit barrier — the replica applier's reconcile path.
func (db *DB) createEntityTable(name, textColumn string) (*EntityTable, error) {
	schema, err := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.TInt64},
		{Name: textColumn, Type: relation.TString},
	}, "id")
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl, err := db.rel.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	et := &EntityTable{db: db, tbl: tbl, textCol: 1}
	db.tables[name] = et
	if err := db.saveMeta(); err != nil {
		return nil, err
	}
	return et, db.shipMetaLocked()
}

// Name returns the table name.
func (t *EntityTable) Name() string { return t.tbl.Name() }

// TextColumn returns the name of the table's text column.
func (t *EntityTable) TextColumn() string {
	return t.tbl.Schema().Cols[t.textCol].Name
}

// InsertText adds an entity row. Views declared over this table pick
// it up via triggers; if a view over this table has a maintenance
// engine attached, the insert routes through the engine's write queue
// (synchronously — it returns once applied and visible), so both
// surfaces stay consistent.
func (t *EntityTable) InsertText(id int64, text string) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	if eng := t.db.engineForEntities(t); eng != nil {
		return eng.Add(id, text)
	}
	return t.tbl.Insert(relation.Tuple{id, text})
}

// Len returns the number of entities.
func (t *EntityTable) Len() int { return t.tbl.Len() }

// Text returns the text of entity id.
func (t *EntityTable) Text(id int64) (string, error) {
	tup, err := t.tbl.Get(id)
	if err != nil {
		return "", err
	}
	return tup[t.textCol].(string), nil
}

// EntityTableByName returns a previously created entity table.
func (db *DB) EntityTableByName(name string) (*EntityTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no entity table %q", name)
	}
	return t, nil
}

// ExampleTableByName returns a previously created examples table.
func (db *DB) ExampleTableByName(name string) (*ExampleTable, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.examples[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no example table %q", name)
	}
	return t, nil
}

// Scan iterates all (id, text) rows.
func (t *EntityTable) Scan(fn func(id int64, text string) error) error {
	return t.tbl.Scan(func(tup relation.Tuple) error {
		return fn(tup[0].(int64), tup[t.textCol].(string))
	})
}

// ExampleTable is a relational table of (id BIGINT, label BIGINT)
// training examples; inserting into it drives view maintenance, like
// the paper's SQL INSERTs monitored by triggers.
type ExampleTable struct {
	db  *DB
	tbl *relation.Table
}

// CreateExampleTable creates an examples table with columns
// (id, label) and records it in the catalog manifest; like every DDL
// it also rides the write-ahead log for replicas.
func (db *DB) CreateExampleTable(name string) (*ExampleTable, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	et, err := db.createExampleTable(name)
	if err != nil {
		return nil, err
	}
	return et, db.rel.CommitLog()
}

// createExampleTable is CreateExampleTable without the read-only
// guard and the commit barrier — the replica applier's reconcile path.
func (db *DB) createExampleTable(name string) (*ExampleTable, error) {
	schema, err := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.TInt64},
		{Name: "label", Type: relation.TInt64},
	}, "id")
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tbl, err := db.rel.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	et := &ExampleTable{db: db, tbl: tbl}
	db.examples[name] = et
	if err := db.saveMeta(); err != nil {
		return nil, err
	}
	return et, db.shipMetaLocked()
}

// Name returns the table name.
func (t *ExampleTable) Name() string { return t.tbl.Name() }

// InsertExample adds a training example (label must be ±1). Triggers
// fan it out to every view declared over this table; if a view over
// this table has a maintenance engine attached, the insert routes
// through the engine's write queue (synchronously).
func (t *ExampleTable) InsertExample(id int64, label int) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	if label != 1 && label != -1 {
		return fmt.Errorf("hazy: label must be ±1, got %d", label)
	}
	if eng := t.db.engineForExamples(t); eng != nil {
		return eng.Train(id, label)
	}
	return t.tbl.Insert(relation.Tuple{id, int64(label)})
}

// Len returns the number of training examples inserted.
func (t *ExampleTable) Len() int { return t.tbl.Len() }

// DeleteExample removes a training example; every view over this
// table retrains its model from scratch (§2.2 footnote). It is
// rejected while an engine manages a view over this table — the
// engine's write queue has no retrain op, so a silent delete would
// leave the served view stale. Detach the engine first.
func (t *ExampleTable) DeleteExample(id int64) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	if t.db.engineForExamples(t) != nil {
		return fmt.Errorf("hazy: %s is engine-managed; detach the engine before deleting examples", t.Name())
	}
	return t.tbl.Delete(id)
}

// RelabelExample changes an example's label; every view over this
// table retrains its model from scratch. Like DeleteExample it is
// rejected while the table is engine-managed.
func (t *ExampleTable) RelabelExample(id int64, label int) error {
	if err := t.db.writable(); err != nil {
		return err
	}
	if label != 1 && label != -1 {
		return fmt.Errorf("hazy: label must be ±1, got %d", label)
	}
	if t.db.engineForExamples(t) != nil {
		return fmt.Errorf("hazy: %s is engine-managed; detach the engine before relabeling examples", t.Name())
	}
	return t.tbl.Update(relation.Tuple{id, int64(label)})
}

// Scan iterates all (id, label) rows.
func (t *ExampleTable) Scan(fn func(id int64, label int) error) error {
	return t.tbl.Scan(func(tup relation.Tuple) error {
		return fn(tup[0].(int64), int(tup[1].(int64)))
	})
}

// ViewSpec declares a classification view (paper §2.1's CREATE
// CLASSIFICATION VIEW).
type ViewSpec struct {
	// Name of the view.
	Name string
	// Entities names the entity table (created with
	// CreateEntityTable).
	Entities string
	// Examples names the training-examples table (created with
	// CreateExampleTable).
	Examples string
	// FeatureFunction is a registered feature-function name
	// (default tf_bag_of_words).
	FeatureFunction string
	// Method is "svm", "logistic", or "ridge" (the USING clause).
	// Empty means automatic selection (§2.1's leave-one-out model
	// selection): when enough warm examples are present at
	// declaration time the method is chosen by k-fold holdout over
	// them, otherwise it defaults to SVM.
	Method string
	// Arch, Strategy, Mode select the maintenance machinery; the
	// defaults are the paper's best configuration (Hazy-MM, eager).
	Arch     core.Arch
	Strategy core.Strategy
	Mode     core.Mode
	// Alpha is the Skiing parameter (default 1).
	Alpha float64
	// BufferFrac sizes the hybrid buffer (default 1%).
	BufferFrac float64
	// PoolPages sizes the on-disk buffer pool (default 512).
	PoolPages int
	// Partitions hash-partitions the view into this many independently
	// maintained stripes — per-stripe eps clustering, watermarks, and
	// Skiing over one shared model — so reorganization, batch
	// maintenance, and rescans run in parallel across a worker pool
	// (the SQL clause PARTITIONS n). 0 falls back to the database's
	// DefaultPartitions, then to unstriped. Every architecture
	// stripes — main-memory entry slices, per-stripe on-disk B+-tree
	// generations, or the hybrid's disk-plus-ε-map — but striping
	// requires the Hazy strategy (NAIVE keeps no eps clustering for
	// the stripes to maintain).
	Partitions int
}

// autoSelectMin is the minimum number of warm examples before the
// automatic model selection runs; below it the SVM default stands
// (there is nothing meaningful to cross-validate).
const autoSelectMin = 12

// ClassView is a maintained classification view.
type ClassView struct {
	name   string
	spec   ViewSpec // the (defaulted) declaration, as persisted
	method string   // resolved method ("svm" | "logistic" | "ridge")
	view   core.View
	ff     feature.Func
	ents   *EntityTable
	exs    *ExampleTable
	// managed is set while an Engine owns this view's maintenance;
	// the table triggers then skip this view (the engine applies the
	// maintenance itself, batched, on its own goroutine).
	managed atomic.Bool
	// pub is the replica serving snapshot: while this process applies a
	// shipped stream, reads come lock-free from here — republished
	// after every applied batch — instead of the live structure the
	// applier is mutating. Nil on a primary (and after PROMOTE), where
	// reads go live or through an attached engine's snapshots.
	pub atomic.Pointer[core.Snapshot]
}

// CreateClassificationView declares and materializes a view: the
// feature function makes its corpus pass over the entity table, the
// core view is built and clustered, triggers are installed on both
// tables so subsequent SQL inserts maintain the view, and the
// declaration is recorded in the catalog manifest so Open re-declares
// it after a restart.
func (db *DB) CreateClassificationView(spec ViewSpec) (*ClassView, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	cv, err := db.createClassificationView(spec, true)
	if err != nil {
		return nil, err
	}
	return cv, db.rel.CommitLog()
}

func (db *DB) createClassificationView(spec ViewSpec, persist bool) (*ClassView, error) {
	// Reserve the name and resolve the tables under the catalog lock,
	// then build OUTSIDE it: the corpus pass, warm training, and
	// clustering can take seconds on a large table, and holding the
	// write lock that long would stall every concurrent Bind/resolve
	// (the serving read path). The tables' own locks make the build's
	// scans safe against concurrent mutations.
	db.mu.Lock()
	if _, dup := db.views[spec.Name]; dup || db.creating[spec.Name] {
		db.mu.Unlock()
		return nil, fmt.Errorf("hazy: view %q already exists", spec.Name)
	}
	et, ok := db.tables[spec.Entities]
	if !ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("hazy: no entity table %q", spec.Entities)
	}
	xt, ok := db.examples[spec.Examples]
	if !ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("hazy: no example table %q", spec.Examples)
	}
	db.creating[spec.Name] = true
	db.mu.Unlock()

	cv, err := db.buildView(spec, et, xt)

	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.creating, spec.Name)
	if err != nil {
		return nil, err
	}
	db.views[spec.Name] = cv
	db.specs[spec.Name] = cv.spec
	if persist {
		if err := db.saveMeta(); err != nil {
			return nil, err
		}
		if err := db.shipMetaLocked(); err != nil {
			return nil, err
		}
	}
	return cv, nil
}

// buildView materializes a view and installs its triggers; it takes
// no catalog locks.
func (db *DB) buildView(spec ViewSpec, et *EntityTable, xt *ExampleTable) (*ClassView, error) {
	if spec.FeatureFunction == "" {
		spec.FeatureFunction = "tf_bag_of_words"
	}
	ff, err := db.registry.New(spec.FeatureFunction)
	if err != nil {
		return nil, err
	}
	if spec.PoolPages == 0 {
		spec.PoolPages = 512
	}
	// Striping: an unset PARTITIONS picks up the database default, but
	// only where striping applies; the resolved count persists with
	// the declaration so reopens are stable.
	if spec.Partitions == 0 && spec.Strategy == core.HazyStrategy {
		spec.Partitions = db.defaultParts
	}
	if spec.Partitions > 1 && spec.Strategy != core.HazyStrategy {
		return nil, fmt.Errorf("hazy: view %q: PARTITIONS %d requires STRATEGY HAZY (the NAIVE strategy keeps no eps clustering for the stripes to maintain)", spec.Name, spec.Partitions)
	}

	// Corpus pass: compute statistics, then feature vectors.
	var corpus []string
	var ids []int64
	err = et.tbl.Scan(func(tup relation.Tuple) error {
		ids = append(ids, tup[0].(int64))
		corpus = append(corpus, tup[et.textCol].(string))
		return nil
	})
	if err != nil {
		return nil, err
	}
	ff.ComputeStats(corpus)
	entities := make([]core.Entity, len(ids))
	for i := range ids {
		entities[i] = core.Entity{ID: ids[i], F: ff.ComputeFeature(corpus[i])}
	}

	// Examples already in the table (e.g. after a restart) warm-train
	// the model before the view is first materialized; the view is a
	// pure function of entities + examples (§3.5.1).
	var warm []learn.Example
	err = xt.tbl.Scan(func(tup relation.Tuple) error {
		id := tup[0].(int64)
		text, terr := et.Text(id)
		if terr != nil {
			return fmt.Errorf("hazy: example references unknown entity %d", id)
		}
		warm = append(warm, learn.Example{
			ID: id, F: ff.ComputeFeature(text), Label: int(tup[1].(int64)),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	// USING clause absent: automatic model selection (§2.1) by k-fold
	// holdout over the warm examples, when there are enough of them.
	// The selection is deterministic (fixed fold shuffle) so a reopen
	// over the same examples re-declares the same model.
	method := spec.Method
	if method == "" {
		method = learn.MethodSVM
		if len(warm) >= autoSelectMin {
			method = learn.SelectMethod(warm, 5, 3, rand.New(rand.NewSource(1)))
		}
	}

	opts := core.Options{
		Mode:        spec.Mode,
		Alpha:       spec.Alpha,
		BufferFrac:  spec.BufferFrac,
		Partitions:  spec.Partitions,
		Norm:        math.Inf(1), // text: ℓ1-normalized features, p=∞
		SGD:         learn.SGDConfig{Loss: learn.LossFor(method)},
		Warm:        warm,
		Metrics:     db.metrics,
		MetricsName: spec.Name,
		Pool:        db.pool,
	}
	view, err := core.New(spec.Arch, spec.Strategy, filepath.Join(db.dir, "view-"+spec.Name), spec.PoolPages, entities, opts)
	if err != nil {
		return nil, err
	}
	cv := &ClassView{name: spec.Name, spec: spec, method: method, view: view, ff: ff, ents: et, exs: xt}

	// Trigger: new entities are featurized and classified on arrival
	// (type-1 dynamic data).
	et.tbl.AddTrigger(func(ev relation.TriggerEvent, old, new relation.Tuple) error {
		if ev != relation.AfterInsert || cv.managed.Load() {
			return nil
		}
		text := new[et.textCol].(string)
		ff.ComputeStatsInc(text)
		return view.Insert(core.Entity{ID: new[0].(int64), F: ff.ComputeFeature(text)})
	})
	// Trigger: new training examples retrain the model and maintain
	// the view (type-2 dynamic data, the paper's focus). Deleting or
	// relabeling an example retrains from scratch (§2.2 footnote).
	allExamples := func() ([]learn.Example, error) {
		var out []learn.Example
		err := xt.Scan(func(id int64, label int) error {
			text, err := et.Text(id)
			if err != nil {
				return fmt.Errorf("hazy: example references unknown entity %d", id)
			}
			out = append(out, learn.Example{ID: id, F: ff.ComputeFeature(text), Label: label})
			return nil
		})
		return out, err
	}
	xt.tbl.AddTrigger(func(ev relation.TriggerEvent, old, new relation.Tuple) error {
		if cv.managed.Load() {
			return nil
		}
		switch ev {
		case relation.AfterInsert:
			id := new[0].(int64)
			label := int(new[1].(int64))
			text, err := et.Text(id)
			if err != nil {
				return fmt.Errorf("hazy: example references unknown entity %d", id)
			}
			return view.Update(ff.ComputeFeature(text), label)
		default: // AfterDelete, AfterUpdate: retrain from scratch
			examples, err := allExamples()
			if err != nil {
				return err
			}
			return view.Retrain(examples)
		}
	})

	return cv, nil
}

// View returns a previously created view.
func (db *DB) View(name string) (*ClassView, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no view %q", name)
	}
	return v, nil
}

// Views lists the declared view names, sorted.
func (db *DB) Views() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return sortedKeys(db.views)
}

// Name returns the view's name.
func (v *ClassView) Name() string { return v.name }

// Method returns the resolved training method ("svm", "logistic", or
// "ridge") — the USING clause, or the automatic selection's choice.
func (v *ClassView) Method() string { return v.method }

// Label answers a Single Entity read: the current class of entity id.
func (v *ClassView) Label(id int64) (int, error) {
	if s := v.pub.Load(); s != nil {
		return s.Label(id)
	}
	return v.view.Label(id)
}

// Members answers an All Members read: ids currently labeled +1.
func (v *ClassView) Members() ([]int64, error) {
	if s := v.pub.Load(); s != nil {
		return s.Members(), nil
	}
	return v.view.Members()
}

// CountMembers counts the entities currently labeled +1.
func (v *ClassView) CountMembers() (int, error) {
	if s := v.pub.Load(); s != nil {
		return s.CountMembers(), nil
	}
	return v.view.CountMembers()
}

// Classify scores free text against the view's current model without
// storing anything (ad-hoc prediction). A view whose model has never
// been trained returns an error — a zero model would label every text
// +1.
func (v *ClassView) Classify(text string) (int, error) {
	m := v.view.Model()
	if m == nil || !m.Trained() {
		return 0, fmt.Errorf("hazy: view %q is untrained (no training examples yet)", v.name)
	}
	return m.Predict(v.ff.ComputeFeature(text)), nil
}

// Eps returns the entity's stored eps — its signed distance to the
// decision boundary under the model of the last reorganization, the
// quantity the Hazy strategy clusters on. It is the SQL surface's
// `eps` column; views built with the naive strategy keep no eps and
// return an error.
func (v *ClassView) Eps(id int64) (float64, error) {
	if s := v.pub.Load(); s != nil && s.Clustered() {
		return s.EpsOf(id)
	}
	if ei, ok := v.view.(core.EpsIndexed); ok && ei.Clustered() {
		return ei.EpsOf(id)
	}
	return 0, fmt.Errorf("hazy: view %q has no eps clustering (naive strategy)", v.name)
}

// Stats exposes maintenance counters.
func (v *ClassView) Stats() Stats { return v.view.Stats() }

// Core returns the underlying maintenance view for advanced use
// (benchmarks, experiments).
func (v *ClassView) Core() core.View { return v.view }

// Entities returns the entity table the view is declared over.
func (v *ClassView) Entities() *EntityTable { return v.ents }

// Examples returns the examples table the view is declared over.
func (v *ClassView) Examples() *ExampleTable { return v.exs }

// NewVectorView builds a maintained view directly over feature
// vectors, bypassing the relational layer — the entry point used by
// the benchmark harness and numeric applications.
func NewVectorView(arch core.Arch, strategy core.Strategy, dir string, poolPages int, entities []Entity, opts core.Options) (core.View, error) {
	return core.New(arch, strategy, dir, poolPages, entities, opts)
}

// Options re-exports the core view options.
type Options = core.Options

// EngineOptions re-exports the maintenance-engine options.
type EngineOptions = engine.Options

// AttachEngine wraps the named view with a concurrent maintenance
// engine and records it in the DB's engine registry: TRAIN and ADD
// flow through a bounded queue drained by one maintenance goroutine
// (group-applied in batches), while reads are answered lock-free from
// atomically published immutable snapshots. While attached the view's
// table triggers are suspended for this view, and inserts through the
// table or Session APIs route through the engine automatically.
//
// Each view has at most one engine, and two attached engines may not
// share an entity or examples table (the mutation routing would be
// ambiguous). An UNmanaged view may share tables with an engined one;
// its trigger maintenance then runs on the engine's goroutine, so
// serve such a view only behind the same serialization as its writes
// (the server's statement mutex does not cover them — prefer
// disjoint tables per engined view, as the constraint suggests).
// DetachEngine — or DB.Close — drains the queue and re-enables the
// triggers. Requires a snapshot-capable (main-memory) view.
func (db *DB) AttachEngine(view string, opts EngineOptions) (*engine.Engine, error) {
	if err := db.writable(); err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	cv, ok := db.views[view]
	if !ok {
		return nil, fmt.Errorf("hazy: no view %q", view)
	}
	if _, ok := cv.view.(core.Snapshotter); !ok {
		return nil, fmt.Errorf("hazy: view %q (%T) does not support snapshots, which the engine requires", cv.name, cv.view)
	}
	for name := range db.engines {
		other := db.views[name]
		if other.ents == cv.ents || other.exs == cv.exs {
			return nil, fmt.Errorf("hazy: view %q shares a table with engine-managed view %q", view, name)
		}
	}
	if cv.managed.Swap(true) {
		return nil, fmt.Errorf("hazy: view %q already has an engine attached", cv.name)
	}
	opts.Metrics = db.metrics
	opts.Name = view
	opts.Pool = db.pool
	eng, err := engine.New(&viewBackend{db: db, cv: cv}, opts)
	if err != nil {
		cv.managed.Store(false)
		return nil, err
	}
	db.engines[view] = eng
	return eng, nil
}

// DetachEngine closes the named view's engine: the queue drains, the
// final snapshot is published, the view's triggers resume, and the
// registry entry is removed. It returns the engine's close error
// (including any unreported async write failure).
func (db *DB) DetachEngine(view string) error {
	db.mu.RLock()
	eng, ok := db.engines[view]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("hazy: view %q has no engine attached", view)
	}
	return eng.Close()
}

// AttachedEngine returns the engine currently attached to the named
// view, or nil.
func (db *DB) AttachedEngine(view string) *engine.Engine {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.engines[view]
}

// viewAndEngine resolves a view and its attached engine under one
// lock acquisition — the serving hot path.
func (db *DB) viewAndEngine(name string) (*ClassView, *engine.Engine, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.views[name]
	if !ok {
		return nil, nil, fmt.Errorf("hazy: no view %q", name)
	}
	return v, db.engines[name], nil
}

// EnginedViews lists the views with an engine attached, sorted.
func (db *DB) EnginedViews() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return sortedKeys(db.engines)
}

// Engine attaches a maintenance engine to v. It is the historical
// form of AttachEngine and is kept for compatibility; the engine is
// registered in the DB's engine registry either way.
func (db *DB) Engine(v *ClassView, opts engine.Options) (*engine.Engine, error) {
	return db.AttachEngine(v.name, opts)
}

// engineForEntities returns the engine managing a view over t, if any.
func (db *DB) engineForEntities(t *EntityTable) *engine.Engine {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, eng := range db.engines {
		if db.views[name].ents == t {
			return eng
		}
	}
	return nil
}

// engineForExamples returns the engine managing a view over t, if any.
func (db *DB) engineForExamples(t *ExampleTable) *engine.Engine {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for name, eng := range db.engines {
		if db.views[name].exs == t {
			return eng
		}
	}
	return nil
}

// viewBackend adapts a ClassView and its tables to engine.Backend.
// All mutating methods run on the engine's single maintenance
// goroutine; Feature is called concurrently from the read path and
// relies on the feature functions' internal synchronization.
type viewBackend struct {
	db *DB
	cv *ClassView
}

func (b *viewBackend) ApplyTrainBatch(ops []engine.TrainOp) []error {
	cv := b.cv
	errs := make([]error, len(ops))
	exs := make([]learn.Example, 0, len(ops))
	for i, op := range ops {
		if op.Label != 1 && op.Label != -1 {
			errs[i] = fmt.Errorf("hazy: label must be ±1, got %d", op.Label)
			continue
		}
		text, err := cv.ents.Text(op.ID)
		if err != nil {
			errs[i] = fmt.Errorf("hazy: example references unknown entity %d", op.ID)
			continue
		}
		// The logged insert first (it can reject duplicates); the
		// view trigger is suspended, so no double maintenance. The
		// WAL commit is deferred to the engine's per-batch Commit —
		// one fsync per applied batch, not per row.
		if err := cv.exs.tbl.InsertDeferred(relation.Tuple{op.ID, int64(op.Label)}); err != nil {
			errs[i] = err
			continue
		}
		exs = append(exs, learn.Example{ID: op.ID, F: cv.ff.ComputeFeature(text), Label: op.Label})
	}
	if len(exs) > 0 {
		if err := core.ApplyBatch(cv.view, exs); err != nil {
			// Every op in the batch is NACKed; the examples were
			// already durably inserted, so delete them back out —
			// each delete is itself logged, so recovery nets to the
			// rows absent, matching what the clients were told.
			for _, ex := range exs {
				_ = cv.exs.tbl.Delete(ex.ID) //nolint:errcheck — best effort under a failing view
			}
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	return errs
}

// insertBatcher is the view-side scatter of a batched ADD run: the
// striped layout applies each stripe's share in parallel.
type insertBatcher interface {
	InsertBatch(entities []core.Entity) []error
}

// ApplyAddBatch group-applies a run of entity inserts: every row is
// durably logged and featurized in arrival order, then the view
// absorbs the whole run in one call — parallel across stripes when
// the layout supports it. Error slots are positional; a failed view
// insert deletes its (already logged) row back out, exactly like
// ApplyAdd.
func (b *viewBackend) ApplyAddBatch(ops []engine.AddOp) []error {
	cv := b.cv
	errs := make([]error, len(ops))
	ents := make([]core.Entity, 0, len(ops))
	idx := make([]int, 0, len(ops)) // ents position → ops position
	for i, op := range ops {
		if err := cv.ents.tbl.InsertDeferred(relation.Tuple{op.ID, op.Text}); err != nil {
			errs[i] = err
			continue
		}
		cv.ff.ComputeStatsInc(op.Text)
		ents = append(ents, core.Entity{ID: op.ID, F: cv.ff.ComputeFeature(op.Text)})
		idx = append(idx, i)
	}
	if len(ents) == 0 {
		return errs
	}
	insert := func(k int) error { return cv.view.Insert(ents[k]) }
	if ib, ok := cv.view.(insertBatcher); ok {
		batchErrs := ib.InsertBatch(ents)
		insert = func(k int) error { return batchErrs[k] }
	}
	for k := range ents {
		if err := insert(k); err != nil {
			_ = cv.ents.tbl.Delete(ents[k].ID) //nolint:errcheck — best effort under a failing view
			errs[idx[k]] = err
		}
	}
	return errs
}

func (b *viewBackend) ApplyAdd(id int64, text string) error {
	cv := b.cv
	if err := cv.ents.tbl.InsertDeferred(relation.Tuple{id, text}); err != nil {
		return err
	}
	cv.ff.ComputeStatsInc(text)
	if err := cv.view.Insert(core.Entity{ID: id, F: cv.ff.ComputeFeature(text)}); err != nil {
		// The entity row is already durably logged but the view never
		// saw it and the client is NACKed: delete it back out (the
		// delete is itself logged), so tables, view, and recovery all
		// agree the ADD did not happen. The corpus-stats increment is
		// not unwound — feature stats are an approximation either way.
		_ = cv.ents.tbl.Delete(id) //nolint:errcheck — best effort under a failing view
		return err
	}
	return nil
}

// Commit is the engine's group-commit barrier: one WAL fsync (in
// durable mode) covers every row the batch logged, and runs before
// any waiter is acknowledged.
func (b *viewBackend) Commit() error {
	return b.db.rel.CommitLog()
}

func (b *viewBackend) Snapshot() (*core.Snapshot, error) {
	return b.cv.view.(core.Snapshotter).Snapshot()
}

func (b *viewBackend) Feature(text string) vector.Vector {
	return b.cv.ff.ComputeFeature(text)
}

// Detach is called by Engine.Close after the final drain: the view's
// table triggers resume FIRST, then the engine leaves the registry —
// in that order, so a concurrent insert either routes to the closed
// engine (an explicit ErrClosed) or runs with live triggers; the
// opposite order would open a window where the insert bypasses the
// engine while the trigger still sees the view as managed, silently
// skipping maintenance. Afterwards a new engine may be attached.
func (b *viewBackend) Detach() {
	b.cv.managed.Store(false)
	b.db.mu.Lock()
	delete(b.db.engines, b.cv.name)
	b.db.mu.Unlock()
}
