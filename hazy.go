// Package hazy is a from-scratch Go reproduction of the Hazy system
// ("Incrementally Maintaining Classification using an RDBMS",
// Koc & Ré, PVLDB 4(5), 2011): classification views maintained inside
// a relational engine under a stream of training-example updates.
//
// A classification view labels every entity of an entity table with
// ±1 using a linear model (SVM, logistic regression, or ridge)
// trained incrementally from an examples table. Hazy keeps the view
// fresh cheaply by clustering entities on their signed distance to
// the decision hyperplane (eps), maintaining low/high watermarks from
// Hölder's inequality so that only tuples inside [lw, hw] can have
// changed label, and reorganizing the clustering per the Skiing
// online strategy, which is 2-competitive as data grows.
//
// Quick start:
//
//	db, _ := hazy.Open(dir)
//	defer db.Close()
//	papers, _ := db.CreateEntityTable("papers", "title")
//	examples, _ := db.CreateExampleTable("feedback")
//	papers.InsertText(1, "query optimization in relational databases")
//	v, _ := db.CreateClassificationView(hazy.ViewSpec{
//	    Name: "labeled_papers", Entities: "papers", Examples: "feedback",
//	    FeatureFunction: "tf_bag_of_words",
//	})
//	examples.InsertExample(1, +1) // trigger retrains + maintains v
//	label, _ := v.Label(1)
package hazy

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"hazy/internal/core"
	"hazy/internal/engine"
	"hazy/internal/feature"
	"hazy/internal/learn"
	"hazy/internal/relation"
	"hazy/internal/vector"
)

// Re-exported architecture, strategy, and mode selectors.
const (
	MainMemory = core.MainMemory
	OnDisk     = core.OnDisk
	Hybrid     = core.HybridArch

	Naive = core.Naive
	Hazy  = core.HazyStrategy

	Eager = core.Eager
	Lazy  = core.Lazy
)

// Entity is re-exported for direct (vector) views.
type Entity = core.Entity

// Stats is re-exported from the maintenance core.
type Stats = core.Stats

// DB is a Hazy database: a catalog of relational tables plus the
// classification views maintained over them.
type DB struct {
	dir      string
	rel      *relation.DB
	registry *feature.Registry
	views    map[string]*ClassView
	tables   map[string]*EntityTable
	examples map[string]*ExampleTable
}

// Open creates or reopens a database directory. Previously created
// entity and example tables are recovered from the catalog manifest;
// classification views are a function of those tables (§3.5.1) and
// are re-declared with CreateClassificationView, which retrains from
// the persisted examples.
func Open(dir string) (*DB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("hazy: %w", err)
	}
	db := &DB{
		dir:      dir,
		rel:      relation.OpenDB(dir, 512),
		registry: feature.NewRegistry(),
		views:    map[string]*ClassView{},
		tables:   map[string]*EntityTable{},
		examples: map[string]*ExampleTable{},
	}
	names, err := db.rel.Recover()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		tbl, err := db.rel.Table(name)
		if err != nil {
			return nil, err
		}
		schema := tbl.Schema()
		if len(schema.Cols) != 2 {
			continue
		}
		switch schema.Cols[1].Type {
		case relation.TString:
			db.tables[name] = &EntityTable{tbl: tbl, textCol: 1}
		case relation.TInt64:
			db.examples[name] = &ExampleTable{tbl: tbl}
		}
	}
	return db, nil
}

// Close flushes and closes all storage.
func (db *DB) Close() error { return db.rel.Close() }

// Registry exposes the feature-function registry so applications can
// register custom functions (paper App. A.2).
func (db *DB) Registry() *feature.Registry { return db.registry }

// EntityTable is a relational table of (id BIGINT, text TEXT) rows —
// the In relation a classification view is declared over.
type EntityTable struct {
	tbl     *relation.Table
	textCol int
}

// CreateEntityTable creates a table with key column "id" and one text
// column.
func (db *DB) CreateEntityTable(name, textColumn string) (*EntityTable, error) {
	schema, err := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.TInt64},
		{Name: textColumn, Type: relation.TString},
	}, "id")
	if err != nil {
		return nil, err
	}
	tbl, err := db.rel.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	et := &EntityTable{tbl: tbl, textCol: 1}
	db.tables[name] = et
	return et, nil
}

// InsertText adds an entity row. Views declared over this table pick
// it up via triggers.
func (t *EntityTable) InsertText(id int64, text string) error {
	return t.tbl.Insert(relation.Tuple{id, text})
}

// Len returns the number of entities.
func (t *EntityTable) Len() int { return t.tbl.Len() }

// Text returns the text of entity id.
func (t *EntityTable) Text(id int64) (string, error) {
	tup, err := t.tbl.Get(id)
	if err != nil {
		return "", err
	}
	return tup[t.textCol].(string), nil
}

// EntityTableByName returns a previously created entity table.
func (db *DB) EntityTableByName(name string) (*EntityTable, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no entity table %q", name)
	}
	return t, nil
}

// ExampleTableByName returns a previously created examples table.
func (db *DB) ExampleTableByName(name string) (*ExampleTable, error) {
	t, ok := db.examples[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no example table %q", name)
	}
	return t, nil
}

// Scan iterates all (id, text) rows.
func (t *EntityTable) Scan(fn func(id int64, text string) error) error {
	return t.tbl.Scan(func(tup relation.Tuple) error {
		return fn(tup[0].(int64), tup[t.textCol].(string))
	})
}

// ExampleTable is a relational table of (id BIGINT, label BIGINT)
// training examples; inserting into it drives view maintenance, like
// the paper's SQL INSERTs monitored by triggers.
type ExampleTable struct {
	tbl *relation.Table
}

// CreateExampleTable creates an examples table with columns
// (id, label).
func (db *DB) CreateExampleTable(name string) (*ExampleTable, error) {
	schema, err := relation.NewSchema([]relation.Column{
		{Name: "id", Type: relation.TInt64},
		{Name: "label", Type: relation.TInt64},
	}, "id")
	if err != nil {
		return nil, err
	}
	tbl, err := db.rel.CreateTable(name, schema)
	if err != nil {
		return nil, err
	}
	et := &ExampleTable{tbl: tbl}
	db.examples[name] = et
	return et, nil
}

// InsertExample adds a training example (label must be ±1). Triggers
// fan it out to every view declared over this table.
func (t *ExampleTable) InsertExample(id int64, label int) error {
	if label != 1 && label != -1 {
		return fmt.Errorf("hazy: label must be ±1, got %d", label)
	}
	return t.tbl.Insert(relation.Tuple{id, int64(label)})
}

// Len returns the number of training examples inserted.
func (t *ExampleTable) Len() int { return t.tbl.Len() }

// DeleteExample removes a training example; every view over this
// table retrains its model from scratch (§2.2 footnote).
func (t *ExampleTable) DeleteExample(id int64) error { return t.tbl.Delete(id) }

// RelabelExample changes an example's label; every view over this
// table retrains its model from scratch.
func (t *ExampleTable) RelabelExample(id int64, label int) error {
	if label != 1 && label != -1 {
		return fmt.Errorf("hazy: label must be ±1, got %d", label)
	}
	return t.tbl.Update(relation.Tuple{id, int64(label)})
}

// Scan iterates all (id, label) rows.
func (t *ExampleTable) Scan(fn func(id int64, label int) error) error {
	return t.tbl.Scan(func(tup relation.Tuple) error {
		return fn(tup[0].(int64), int(tup[1].(int64)))
	})
}

// ViewSpec declares a classification view (paper §2.1's CREATE
// CLASSIFICATION VIEW).
type ViewSpec struct {
	// Name of the view.
	Name string
	// Entities names the entity table (created with
	// CreateEntityTable).
	Entities string
	// Examples names the training-examples table (created with
	// CreateExampleTable).
	Examples string
	// FeatureFunction is a registered feature-function name
	// (default tf_bag_of_words).
	FeatureFunction string
	// Method is "svm" (default), "logistic", or "ridge" (the USING
	// clause). Empty means automatic selection once enough examples
	// arrive — here it simply defaults to SVM, matching the paper's
	// experimental configuration.
	Method string
	// Arch, Strategy, Mode select the maintenance machinery; the
	// defaults are the paper's best configuration (Hazy-MM, eager).
	Arch     core.Arch
	Strategy core.Strategy
	Mode     core.Mode
	// Alpha is the Skiing parameter (default 1).
	Alpha float64
	// BufferFrac sizes the hybrid buffer (default 1%).
	BufferFrac float64
	// PoolPages sizes the on-disk buffer pool (default 512).
	PoolPages int
}

// ClassView is a maintained classification view.
type ClassView struct {
	name string
	view core.View
	ff   feature.Func
	ents *EntityTable
	exs  *ExampleTable
	// managed is set while an Engine owns this view's maintenance;
	// the table triggers then skip this view (the engine applies the
	// maintenance itself, batched, on its own goroutine).
	managed atomic.Bool
}

// CreateClassificationView declares and materializes a view: the
// feature function makes its corpus pass over the entity table, the
// core view is built and clustered, and triggers are installed on
// both tables so subsequent SQL inserts maintain the view.
func (db *DB) CreateClassificationView(spec ViewSpec) (*ClassView, error) {
	if _, dup := db.views[spec.Name]; dup {
		return nil, fmt.Errorf("hazy: view %q already exists", spec.Name)
	}
	et, ok := db.tables[spec.Entities]
	if !ok {
		return nil, fmt.Errorf("hazy: no entity table %q", spec.Entities)
	}
	xt, ok := db.examples[spec.Examples]
	if !ok {
		return nil, fmt.Errorf("hazy: no example table %q", spec.Examples)
	}
	if spec.FeatureFunction == "" {
		spec.FeatureFunction = "tf_bag_of_words"
	}
	ff, err := db.registry.New(spec.FeatureFunction)
	if err != nil {
		return nil, err
	}
	if spec.PoolPages == 0 {
		spec.PoolPages = 512
	}

	// Corpus pass: compute statistics, then feature vectors.
	var corpus []string
	var ids []int64
	err = et.tbl.Scan(func(tup relation.Tuple) error {
		ids = append(ids, tup[0].(int64))
		corpus = append(corpus, tup[et.textCol].(string))
		return nil
	})
	if err != nil {
		return nil, err
	}
	ff.ComputeStats(corpus)
	entities := make([]core.Entity, len(ids))
	for i := range ids {
		entities[i] = core.Entity{ID: ids[i], F: ff.ComputeFeature(corpus[i])}
	}

	// Examples already in the table (e.g. after a restart) warm-train
	// the model before the view is first materialized; the view is a
	// pure function of entities + examples (§3.5.1).
	var warm []learn.Example
	err = xt.tbl.Scan(func(tup relation.Tuple) error {
		id := tup[0].(int64)
		text, terr := et.Text(id)
		if terr != nil {
			return fmt.Errorf("hazy: example references unknown entity %d", id)
		}
		warm = append(warm, learn.Example{
			ID: id, F: ff.ComputeFeature(text), Label: int(tup[1].(int64)),
		})
		return nil
	})
	if err != nil {
		return nil, err
	}

	opts := core.Options{
		Mode:       spec.Mode,
		Alpha:      spec.Alpha,
		BufferFrac: spec.BufferFrac,
		Norm:       math.Inf(1), // text: ℓ1-normalized features, p=∞
		SGD:        learn.SGDConfig{Loss: learn.LossFor(spec.Method)},
		Warm:       warm,
	}
	view, err := core.New(spec.Arch, spec.Strategy, filepath.Join(db.dir, "view-"+spec.Name), spec.PoolPages, entities, opts)
	if err != nil {
		return nil, err
	}
	cv := &ClassView{name: spec.Name, view: view, ff: ff, ents: et, exs: xt}

	// Trigger: new entities are featurized and classified on arrival
	// (type-1 dynamic data).
	et.tbl.AddTrigger(func(ev relation.TriggerEvent, old, new relation.Tuple) error {
		if ev != relation.AfterInsert || cv.managed.Load() {
			return nil
		}
		text := new[et.textCol].(string)
		ff.ComputeStatsInc(text)
		return view.Insert(core.Entity{ID: new[0].(int64), F: ff.ComputeFeature(text)})
	})
	// Trigger: new training examples retrain the model and maintain
	// the view (type-2 dynamic data, the paper's focus). Deleting or
	// relabeling an example retrains from scratch (§2.2 footnote).
	allExamples := func() ([]learn.Example, error) {
		var out []learn.Example
		err := xt.Scan(func(id int64, label int) error {
			text, err := et.Text(id)
			if err != nil {
				return fmt.Errorf("hazy: example references unknown entity %d", id)
			}
			out = append(out, learn.Example{ID: id, F: ff.ComputeFeature(text), Label: label})
			return nil
		})
		return out, err
	}
	xt.tbl.AddTrigger(func(ev relation.TriggerEvent, old, new relation.Tuple) error {
		if cv.managed.Load() {
			return nil
		}
		switch ev {
		case relation.AfterInsert:
			id := new[0].(int64)
			label := int(new[1].(int64))
			text, err := et.Text(id)
			if err != nil {
				return fmt.Errorf("hazy: example references unknown entity %d", id)
			}
			return view.Update(ff.ComputeFeature(text), label)
		default: // AfterDelete, AfterUpdate: retrain from scratch
			examples, err := allExamples()
			if err != nil {
				return err
			}
			return view.Retrain(examples)
		}
	})

	db.views[spec.Name] = cv
	return cv, nil
}

// View returns a previously created view.
func (db *DB) View(name string) (*ClassView, error) {
	v, ok := db.views[name]
	if !ok {
		return nil, fmt.Errorf("hazy: no view %q", name)
	}
	return v, nil
}

// Name returns the view's name.
func (v *ClassView) Name() string { return v.name }

// Label answers a Single Entity read: the current class of entity id.
func (v *ClassView) Label(id int64) (int, error) { return v.view.Label(id) }

// Members answers an All Members read: ids currently labeled +1.
func (v *ClassView) Members() ([]int64, error) { return v.view.Members() }

// CountMembers counts the entities currently labeled +1.
func (v *ClassView) CountMembers() (int, error) { return v.view.CountMembers() }

// Classify scores free text against the view's current model without
// storing anything (ad-hoc prediction).
func (v *ClassView) Classify(text string) int {
	return v.view.Model().Predict(v.ff.ComputeFeature(text))
}

// Stats exposes maintenance counters.
func (v *ClassView) Stats() Stats { return v.view.Stats() }

// Core returns the underlying maintenance view for advanced use
// (benchmarks, experiments).
func (v *ClassView) Core() core.View { return v.view }

// Entities returns the entity table the view is declared over.
func (v *ClassView) Entities() *EntityTable { return v.ents }

// NewVectorView builds a maintained view directly over feature
// vectors, bypassing the relational layer — the entry point used by
// the benchmark harness and numeric applications.
func NewVectorView(arch core.Arch, strategy core.Strategy, dir string, poolPages int, entities []Entity, opts core.Options) (core.View, error) {
	return core.New(arch, strategy, dir, poolPages, entities, opts)
}

// Options re-exports the core view options.
type Options = core.Options

// EngineOptions re-exports the maintenance-engine options.
type EngineOptions = engine.Options

// Engine wraps a view with the concurrent maintenance engine: TRAIN
// and ADD flow through a bounded queue drained by one maintenance
// goroutine (group-applied in batches), while reads are answered
// lock-free from atomically published immutable snapshots. While an
// engine is attached the view's table triggers are suspended for this
// view — mutate the entity and example tables only through the
// engine, and Close it before closing the DB (Close drains the queue
// and re-enables the triggers). Requires a snapshot-capable
// (main-memory) view.
func (db *DB) Engine(v *ClassView, opts engine.Options) (*engine.Engine, error) {
	if _, ok := v.view.(core.Snapshotter); !ok {
		return nil, fmt.Errorf("hazy: view %q (%T) does not support snapshots; the engine requires the MainMemory architecture", v.name, v.view)
	}
	if v.managed.Swap(true) {
		return nil, fmt.Errorf("hazy: view %q already has an engine attached", v.name)
	}
	eng, err := engine.New(&viewBackend{cv: v}, opts)
	if err != nil {
		v.managed.Store(false)
		return nil, err
	}
	return eng, nil
}

// viewBackend adapts a ClassView and its tables to engine.Backend.
// All mutating methods run on the engine's single maintenance
// goroutine; Feature is called concurrently from the read path and
// relies on the feature functions' internal synchronization.
type viewBackend struct {
	cv *ClassView
}

func (b *viewBackend) ApplyTrainBatch(ops []engine.TrainOp) []error {
	cv := b.cv
	errs := make([]error, len(ops))
	exs := make([]learn.Example, 0, len(ops))
	for i, op := range ops {
		if op.Label != 1 && op.Label != -1 {
			errs[i] = fmt.Errorf("hazy: label must be ±1, got %d", op.Label)
			continue
		}
		text, err := cv.ents.Text(op.ID)
		if err != nil {
			errs[i] = fmt.Errorf("hazy: example references unknown entity %d", op.ID)
			continue
		}
		// The durable insert first (it can reject duplicates); the
		// view trigger is suspended, so no double maintenance.
		if err := cv.exs.tbl.Insert(relation.Tuple{op.ID, int64(op.Label)}); err != nil {
			errs[i] = err
			continue
		}
		exs = append(exs, learn.Example{ID: op.ID, F: cv.ff.ComputeFeature(text), Label: op.Label})
	}
	if len(exs) > 0 {
		if err := core.ApplyBatch(cv.view, exs); err != nil {
			for i := range errs {
				if errs[i] == nil {
					errs[i] = err
				}
			}
		}
	}
	return errs
}

func (b *viewBackend) ApplyAdd(id int64, text string) error {
	cv := b.cv
	if err := cv.ents.tbl.Insert(relation.Tuple{id, text}); err != nil {
		return err
	}
	cv.ff.ComputeStatsInc(text)
	return cv.view.Insert(core.Entity{ID: id, F: cv.ff.ComputeFeature(text)})
}

func (b *viewBackend) Snapshot() (*core.Snapshot, error) {
	return b.cv.view.(core.Snapshotter).Snapshot()
}

func (b *viewBackend) Feature(text string) vector.Vector {
	return b.cv.ff.ComputeFeature(text)
}

// Detach is called by Engine.Close after the final drain: the view's
// table triggers resume and a new engine may be attached.
func (b *viewBackend) Detach() { b.cv.managed.Store(false) }
