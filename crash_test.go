// Crash-safety suite: hundreds of synthesized crash points — every
// byte offset of a recorded WAL, and deterministic fault injection at
// every Nth file write — each followed by a real recovery (hazy.Open)
// and the same two assertions: the catalog reopens as an exact prefix
// of the submitted workload, and the rebuilt classification view (its
// labels, members set, and ε-index) agrees with a full rescan of the
// recovered tables.
package hazy_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	root "hazy"
	"hazy/internal/core"
	"hazy/internal/storage"
	"hazy/internal/storage/faultfs"
)

// A crashOp is one statement of the mixed workload: table DDL, entity
// ADDs, the CREATE VIEW, a CHECKPOINT, and TRAINs.
type crashOp struct {
	stmt  string
	kind  byte // 'D' DDL/CHECKPOINT, 'E' entity insert, 'X' example insert
	id    int64
	text  string
	label int64
}

// crashTitle generates deterministic entity text: even ids lean
// database-flavored, odd ids systems-flavored, so the view's model
// has signal.
func crashTitle(id int64) string {
	if id%2 == 0 {
		return fmt.Sprintf("relational database query optimization paper %d", id)
	}
	return fmt.Sprintf("operating system kernel scheduling notes %d", id)
}

// crashWorkload is the submitted op sequence: mixed DDL, ADD (entity
// inserts), CREATE VIEW mid-stream, an explicit CHECKPOINT, and TRAIN
// (example inserts), all single-row so one op is one WAL record.
func crashWorkload() []crashOp {
	ops := []crashOp{
		{kind: 'D', stmt: "CREATE TABLE papers (id BIGINT, title TEXT) KEY id"},
		{kind: 'D', stmt: "CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id"},
	}
	addEntity := func(id int64) {
		ops = append(ops, crashOp{
			kind: 'E', id: id, text: crashTitle(id),
			stmt: fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, crashTitle(id)),
		})
	}
	addTrain := func(id int64) {
		label := int64(1)
		if id%2 != 0 {
			label = -1
		}
		ops = append(ops, crashOp{
			kind: 'X', id: id, label: label,
			stmt: fmt.Sprintf("INSERT INTO feedback VALUES (%d, %d)", id, label),
		})
	}
	for id := int64(1); id <= 6; id++ {
		addEntity(id)
	}
	ops = append(ops, crashOp{kind: 'D', stmt: `CREATE CLASSIFICATION VIEW lv KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM`})
	for id := int64(1); id <= 4; id++ {
		addTrain(id)
	}
	for id := int64(7); id <= 10; id++ {
		addEntity(id)
	}
	// A second, striped on-disk view over the same tables: every crash
	// point downstream also recovers a disk-resident striped layout
	// (stripe subdirectories, per-stripe clustered B+-trees) from the
	// same WAL prefix.
	ops = append(ops, crashOp{kind: 'D', stmt: `CREATE CLASSIFICATION VIEW sv KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM
		ARCHITECTURE OD PARTITIONS 2`})
	ops = append(ops, crashOp{kind: 'D', stmt: "CHECKPOINT"})
	for id := int64(11); id <= 14; id++ {
		addEntity(id)
		addTrain(id - 6)
	}
	return ops
}

// runCrashWorkload executes ops against db until the first error,
// returning how many were acknowledged (and the error, for fault
// runs).
func runCrashWorkload(db *root.DB, ops []crashOp) (acked int, err error) {
	sess := db.NewSession()
	for i, op := range ops {
		if _, err := sess.Exec(op.stmt); err != nil {
			return i, err
		}
		acked = i + 1
	}
	return acked, nil
}

// recoveredState reads the tables back from a reopened database.
func recoveredState(t *testing.T, db *root.DB) (ents map[int64]string, exs map[int64]int64) {
	t.Helper()
	ents = map[int64]string{}
	exs = map[int64]int64{}
	if et, err := db.EntityTableByName("papers"); err == nil {
		if err := et.Scan(func(id int64, text string) error {
			ents[id] = text
			return nil
		}); err != nil {
			t.Fatalf("scan recovered entities: %v", err)
		}
	}
	if xt, err := db.ExampleTableByName("feedback"); err == nil {
		if err := xt.Scan(func(id int64, label int) error {
			exs[id] = int64(label)
			return nil
		}); err != nil {
			t.Fatalf("scan recovered examples: %v", err)
		}
	}
	return ents, exs
}

func mapsEqualStr(a, b map[int64]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func mapsEqualInt(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// assertPrefixConsistent checks the central crash-consistency claim:
// the recovered tables equal the state after some prefix of the
// submitted ops (K ops applied), with K at least minAcked. It returns
// K.
func assertPrefixConsistent(t *testing.T, db *root.DB, ops []crashOp, minAcked int, desc string) int {
	t.Helper()
	gotEnts, gotExs := recoveredState(t, db)
	simEnts := map[int64]string{}
	simExs := map[int64]int64{}
	for k := 0; k <= len(ops); k++ {
		if k > 0 {
			switch op := ops[k-1]; op.kind {
			case 'E':
				simEnts[op.id] = op.text
			case 'X':
				simExs[op.id] = op.label
			}
		}
		if mapsEqualStr(gotEnts, simEnts) && mapsEqualInt(gotExs, simExs) {
			if k < minAcked {
				// The same state can also match a later prefix whose
				// extra ops are all DDL; scan forward before failing.
				ok := true
				for j := k; j < minAcked; j++ {
					if ops[j].kind != 'D' {
						ok = false
						break
					}
				}
				if !ok {
					t.Fatalf("%s: recovered only %d of %d acknowledged ops", desc, k, minAcked)
				}
			}
			return k
		}
	}
	t.Fatalf("%s: recovered state (%d entities, %d examples) matches no prefix of the workload",
		desc, len(gotEnts), len(gotExs))
	return -1
}

// assertViewsConsistent audits every view of the crash workload: the
// unstriped main-memory lv and the striped on-disk sv.
func assertViewsConsistent(t *testing.T, db *root.DB, desc string) {
	t.Helper()
	assertViewConsistent(t, db, "lv", desc)
	assertViewConsistent(t, db, "sv", desc)
}

// assertViewConsistent checks the rebuilt view against a full rescan:
// every recovered entity has a ±1 label, the members set is exactly
// the +1-labeled ids, and the ε-clustered index covers exactly the
// recovered entities with labels agreeing with point reads. Striped
// views additionally get a per-stripe audit: the stripes partition
// the entity set exactly, with per-stripe labels agreeing too.
func assertViewConsistent(t *testing.T, db *root.DB, name, desc string) {
	t.Helper()
	v, err := db.View(name)
	if err != nil {
		return // crash predates the view declaration
	}
	ents, _ := recoveredState(t, db)
	wantMembers := map[int64]bool{}
	for id := range ents {
		lbl, err := v.Label(id)
		if err != nil {
			t.Fatalf("%s: Label(%d): %v", desc, id, err)
		}
		if lbl != 1 && lbl != -1 {
			t.Fatalf("%s: Label(%d) = %d", desc, id, lbl)
		}
		if lbl == 1 {
			wantMembers[id] = true
		}
	}
	members, err := v.Members()
	if err != nil {
		t.Fatalf("%s: Members: %v", desc, err)
	}
	if len(members) != len(wantMembers) {
		t.Fatalf("%s: %d members, point reads say %d", desc, len(members), len(wantMembers))
	}
	for _, id := range members {
		if !wantMembers[id] {
			t.Fatalf("%s: member %d not labeled +1", desc, id)
		}
	}
	if n, err := v.CountMembers(); err != nil || n != len(members) {
		t.Fatalf("%s: CountMembers = %d, %v (want %d)", desc, n, err, len(members))
	}
	// ε-index vs full rescan: the clustered layout must hold exactly
	// the recovered entities, each with the label its point read
	// reports and the eps its point lookup reports.
	if ei, ok := v.Core().(core.EpsIndexed); ok && ei.Clustered() {
		cur, err := ei.ScanEps(math.Inf(-1), math.Inf(1))
		if err != nil {
			t.Fatalf("%s: ScanEps: %v", desc, err)
		}
		seen := map[int64]bool{}
		for {
			e, ok, err := cur.Next()
			if err != nil {
				t.Fatalf("%s: eps cursor: %v", desc, err)
			}
			if !ok {
				break
			}
			if seen[e.ID] {
				t.Fatalf("%s: id %d twice in eps index", desc, e.ID)
			}
			seen[e.ID] = true
			if _, there := ents[e.ID]; !there {
				t.Fatalf("%s: eps index has phantom id %d", desc, e.ID)
			}
			lbl, _ := v.Label(e.ID)
			if int(e.Label) != lbl {
				t.Fatalf("%s: eps index label %d for id %d, point read %d", desc, e.Label, e.ID, lbl)
			}
			if eps, err := ei.EpsOf(e.ID); err != nil || eps != e.Eps {
				t.Fatalf("%s: EpsOf(%d) = %v, %v; index scan says %v", desc, e.ID, eps, err, e.Eps)
			}
		}
		cur.Close()
		if len(seen) != len(ents) {
			t.Fatalf("%s: eps index covers %d ids, tables have %d", desc, len(seen), len(ents))
		}
	}
	// Striped views: the stripes must partition the recovered entity
	// set exactly — every id in exactly one stripe's clustered index,
	// with the stripe-local label agreeing with the point read.
	if sv, ok := v.Core().(*core.StripedView); ok {
		owner := map[int64]int{}
		for i := 0; i < sv.Stripes(); i++ {
			cur, err := sv.ScanEpsStripe(i, math.Inf(-1), math.Inf(1))
			if err != nil {
				t.Fatalf("%s: ScanEpsStripe(%d): %v", desc, i, err)
			}
			for {
				e, ok, err := cur.Next()
				if err != nil {
					t.Fatalf("%s: stripe %d cursor: %v", desc, i, err)
				}
				if !ok {
					break
				}
				if prev, dup := owner[e.ID]; dup {
					t.Fatalf("%s: id %d in stripes %d and %d", desc, e.ID, prev, i)
				}
				owner[e.ID] = i
				lbl, _ := v.Label(e.ID)
				if int(e.Label) != lbl {
					t.Fatalf("%s: stripe %d label %d for id %d, point read %d", desc, i, e.Label, e.ID, lbl)
				}
			}
			cur.Close()
		}
		if len(owner) != len(ents) {
			t.Fatalf("%s: stripes cover %d ids, tables have %d", desc, len(owner), len(ents))
		}
	}
	// And through the SQL surface.
	sess := db.NewSession()
	res, err := sess.Exec(fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE class = 1", name))
	if err != nil {
		t.Fatalf("%s: SQL count: %v", desc, err)
	}
	if want := fmt.Sprint(len(members)); res.Rows[0][0] != want {
		t.Fatalf("%s: SQL members count %s, want %s", desc, res.Rows[0][0], want)
	}
}

// copyDir copies a database directory file by file — the moral
// equivalent of imaging the disk at the instant of a crash.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.CopyFS(dst, os.DirFS(src)); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMatrixWALTruncation records the mixed workload's WAL, then
// for every byte offset truncates a copy there, reopens, and asserts
// prefix consistency plus view/ε-index agreement — the satellite
// crash matrix. The workload runs with fsync off (byte truncation
// itself synthesizes the lost tail), one segment, no clean Close.
func TestCrashMatrixWALTruncation(t *testing.T) {
	ops := crashWorkload()
	src := t.TempDir()
	db, err := root.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	if acked, err := runCrashWorkload(db, ops); err != nil || acked != len(ops) {
		t.Fatalf("workload: %d/%d acked, %v", acked, len(ops), err)
	}
	// No db.Close(): a close would checkpoint, flush, and prune — the
	// crash image must keep its unflushed tail in the log. (The open
	// handle leaks into the test process; the files on disk are
	// exactly what a kill -9 here would leave.)
	segPath := filepath.Join(src, "wal", "wal-00000001.seg")
	seg, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	stride := 1
	if testing.Short() {
		stride = 17
	}
	if raceEnabled {
		// The race build covers the mechanism on a sparse sample; the
		// CI crash-safety job sweeps every byte without instrumentation.
		stride *= 23
	}
	points := 0
	for cut := 0; cut < len(seg); cut += stride {
		desc := fmt.Sprintf("truncate@%d", cut)
		dst := t.TempDir()
		copyDir(t, src, dst)
		if err := os.WriteFile(filepath.Join(dst, "wal", "wal-00000001.seg"), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rdb, err := root.Open(dst)
		if err != nil {
			t.Fatalf("%s: recovery failed: %v", desc, err)
		}
		assertPrefixConsistent(t, rdb, ops, 0, desc)
		assertViewsConsistent(t, rdb, desc)
		if err := rdb.Close(); err != nil {
			t.Fatalf("%s: close after recovery: %v", desc, err)
		}
		// Recovery must be repeatable: a second open over the now
		// checkpointed directory sees the same state.
		rdb2, err := root.Open(dst)
		if err != nil {
			t.Fatalf("%s: second recovery failed: %v", desc, err)
		}
		k1 := assertPrefixConsistent(t, rdb2, ops, 0, desc+"/reopen")
		rdb2.Close()
		_ = k1
		points++
	}
	if !testing.Short() && !raceEnabled && points < 200 {
		t.Fatalf("crash matrix synthesized only %d points (WAL of %d bytes)", points, len(seg))
	}
	t.Logf("crash matrix: %d truncation points over a %d-byte WAL", points, len(seg))
}

// TestFaultInjectionCrashPoints sweeps deterministic crash and
// torn-write faults across every Nth file mutation of the workload in
// full-durability mode (fsync always), reopening and asserting after
// each: recovery must land on a prefix that includes every
// acknowledged op — the fsync contract.
func TestFaultInjectionCrashPoints(t *testing.T) {
	ops := crashWorkload()
	open := func(dir string, vfs storage.VFS) (*root.DB, error) {
		return root.OpenWith(dir, root.OpenOptions{Fsync: "always", VFS: vfs})
	}
	// Probe: count the workload's total mutating file ops fault-free.
	probe := faultfs.New(storage.OS, 0, faultfs.Crash)
	{
		dir := t.TempDir()
		db, err := open(dir, probe)
		if err != nil {
			t.Fatal(err)
		}
		if acked, err := runCrashWorkload(db, ops); err != nil || acked != len(ops) {
			t.Fatalf("probe workload: %d acked, %v", acked, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	total := probe.Writes()
	if total < 60 {
		t.Fatalf("workload makes only %d file mutations — sweep too small", total)
	}
	stride := int64(1)
	if testing.Short() {
		stride = 7
	}
	if raceEnabled {
		stride *= 11
	}
	points := 0
	for _, mode := range []faultfs.Mode{faultfs.Crash, faultfs.Torn} {
		for n := int64(1); n <= total; n += stride {
			desc := fmt.Sprintf("%v@%d", mode, n)
			dir := t.TempDir()
			fs := faultfs.New(storage.OS, n, mode)
			acked := 0
			db, err := open(dir, fs)
			if err == nil {
				// The fault may strike mid-workload (some ops acked)
				// or only during Close's shutdown checkpoint (all ops
				// acked) — both are valid crash points. Close with the
				// fault armed mutates nothing (every write fails) but
				// releases file handles.
				acked, err = runCrashWorkload(db, ops)
				db.Close()
			}
			if err != nil && !errors.Is(err, faultfs.ErrInjected) {
				// The injected error must surface as itself, wrapped
				// however deep in the stack it struck.
				t.Fatalf("%s: fault surfaced as foreign error: %v", desc, err)
			}
			rdb, rerr := root.Open(dir)
			if rerr != nil {
				t.Fatalf("%s: recovery failed: %v", desc, rerr)
			}
			assertPrefixConsistent(t, rdb, ops, acked, desc)
			assertViewsConsistent(t, rdb, desc)
			rdb.Close()
			points++
		}
	}
	if !testing.Short() && !raceEnabled && points < 100 {
		t.Fatalf("fault sweep synthesized only %d points", points)
	}
	t.Logf("fault sweep: %d crash points over %d file mutations × 2 modes", points, total)
}

// TestCheckpointDuringConcurrentReadsAndIngest is the -race
// satellite: SQL reads stream from snapshots and internally locked
// tables while the engine ingests and checkpoints fire mid-scan.
func TestCheckpointDuringConcurrentReadsAndIngest(t *testing.T) {
	dir := t.TempDir()
	db, err := root.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession()
	for _, stmt := range []string{
		"CREATE TABLE papers (id BIGINT, title TEXT) KEY id",
		"CREATE TABLE feedback (id BIGINT, label BIGINT) KEY id",
	} {
		if _, err := sess.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(1); id <= 40; id++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO papers VALUES (%d, '%s')", id, crashTitle(id))); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(1); id <= 10; id++ {
		if _, err := sess.Exec(fmt.Sprintf("INSERT INTO feedback VALUES (%d, %d)", id, 1-2*(id%2))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Exec(`CREATE CLASSIFICATION VIEW lv KEY id
		ENTITIES FROM papers KEY id
		EXAMPLES FROM feedback KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec("ATTACH ENGINE TO lv"); err != nil {
		t.Fatal(err)
	}

	const newEntities = 150
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	fail := make(chan error, 8)

	// Readers: every plan shape, engined snapshots and table scans.
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rs := db.NewSession()
			stmts := []string{
				"SELECT COUNT(*) FROM lv WHERE class = 1",
				"SELECT id FROM lv WHERE eps >= -10.0 AND eps <= 10.0 LIMIT 5",
				fmt.Sprintf("SELECT class FROM lv WHERE id = %d", r+1),
				"SELECT COUNT(*) FROM papers",
				"SELECT id FROM feedback WHERE label = 1 LIMIT 3",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := rs.Exec(stmts[i%len(stmts)]); err != nil {
					fail <- fmt.Errorf("reader: %w", err)
					return
				}
			}
		}(r)
	}
	// Ingester: async ADD + TRAIN through the engine, one flush at end.
	writers.Add(1)
	go func() {
		defer writers.Done()
		ws := db.NewSession()
		for i := int64(0); i < newEntities; i++ {
			id := 100 + i
			if err := ws.AddAsync("lv", id, crashTitle(id)); err != nil {
				fail <- fmt.Errorf("add: %w", err)
				return
			}
			if err := ws.TrainAsync("lv", id, 1-2*int(id%2)); err != nil {
				fail <- fmt.Errorf("train: %w", err)
				return
			}
		}
		if err := ws.Flush("lv"); err != nil {
			fail <- fmt.Errorf("flush: %w", err)
		}
	}()
	// Checkpointer: fires repeatedly mid-everything.
	writers.Add(1)
	go func() {
		defer writers.Done()
		cs := db.NewSession()
		for i := 0; i < 25; i++ {
			if _, err := cs.Exec("CHECKPOINT"); err != nil {
				fail <- fmt.Errorf("checkpoint: %w", err)
				return
			}
		}
	}()

	// Readers loop until the writers (ingester + checkpointer) finish.
	writers.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must be on disk.
	rdb, err := root.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	ents, exs := recoveredState(t, rdb)
	if len(ents) != 40+newEntities {
		t.Fatalf("recovered %d entities, want %d", len(ents), 40+newEntities)
	}
	if len(exs) != 10+newEntities {
		t.Fatalf("recovered %d examples, want %d", len(exs), 10+newEntities)
	}
	assertViewConsistent(t, rdb, "lv", "post-concurrency")
}
