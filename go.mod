module hazy

go 1.24
