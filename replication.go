package hazy

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"hazy/internal/core"
	"hazy/internal/relation"
	"hazy/internal/replica"
	"hazy/internal/storage"
	"hazy/internal/wal"
)

// Read-replica scale-out. A primary ships its committed WAL to any
// number of replicas (StartShipping); a replica seeds itself from a
// checkpoint image (BootstrapReplica), opens normally, and tails the
// stream (StartReplica), applying every record through the relation
// layer's idempotent redo path — triggers included, so each replica
// maintains its own classification views in the primary's exact
// mutation order. Replica reads come lock-free from view snapshots
// republished after every applied batch; mutations are rejected until
// PROMOTE stops the applier and turns the replica into a writable
// primary at the exact position it had applied to.
//
// Consistency: a replica serves a prefix of the primary's history
// (prefix-consistent, bounded by the lag gauges); read-your-writes
// holds only on the primary.

// errReadOnly rejects every mutation surface while this process
// serves as a replica.
var errReadOnly = fmt.Errorf("hazy: read-only replica: writes go to the primary (PROMOTE to accept writes)")

// writable errors while the database is in read-only replica mode.
func (db *DB) writable() error {
	if db.readOnly.Load() {
		return errReadOnly
	}
	return nil
}

// ReadOnly reports whether the database is serving as a read-only
// replica.
func (db *DB) ReadOnly() bool { return db.readOnly.Load() }

// StatementMu is the statement-serialization lock shared by every
// writer surface: the server wraps each statement in it, and a
// replica's log applier holds it per applied record — so shipped
// records and local statements interleave whole, never halfway.
func (db *DB) StatementMu() *sync.Mutex { return &db.stmtMu }

// shipMetaLocked appends the current catalog manifest to the WAL as a
// metadata record, so the DDL it reflects reaches replicas in stream
// order. Callers hold db.mu — the append must land before any
// mutation on the just-declared object can be journaled — and own the
// commit barrier (CommitLog after db.mu is released).
func (db *DB) shipMetaLocked() error {
	data, err := json.Marshal(db.buildMeta())
	if err != nil {
		return fmt.Errorf("hazy: marshal meta record: %w", err)
	}
	return db.rel.AppendMetaRecord(data)
}

// primaryAdapter narrows DB to what the shipper needs.
type primaryAdapter struct{ db *DB }

func (p primaryAdapter) Log() *wal.Log { return p.db.rel.Log() }

func (p primaryAdapter) CheckpointImage(send func(name string, data []byte) error) (wal.Pos, error) {
	return p.db.checkpointImage(send)
}

// checkpointImage writes the hazy manifest, checkpoints the whole
// catalog, and streams every file a fresh replica needs (the relation
// manifest, each table's pages, and the hazy manifest).
func (db *DB) checkpointImage(send func(name string, data []byte) error) (wal.Pos, error) {
	db.mu.Lock()
	err := db.saveMeta()
	db.mu.Unlock()
	if err != nil {
		return wal.Pos{}, err
	}
	return db.rel.CheckpointImage([]string{metaFile}, send)
}

// StartShipping starts serving the replication stream on addr
// (":7071", or "127.0.0.1:0" for an ephemeral test port). Replicas
// connect with BootstrapReplica + StartReplica. The shipper closes
// with the database; the returned handle's Addr resolves ":0".
func (db *DB) StartShipping(addr string) (*replica.Shipper, error) {
	s, err := replica.NewShipper(primaryAdapter{db}, addr, db.repl)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.shipper = s
	db.mu.Unlock()
	return s, nil
}

// BootstrapReplica seeds dir from the primary shipping at addr: it
// fetches a consistent checkpoint image, writes its files, and primes
// the manifest so the next OpenWith + StartReplica resumes the stream
// exactly where the image left off. A dir that already holds a
// database is left untouched (reopen-and-resume); only a fresh or
// empty dir fetches an image.
func BootstrapReplica(dir, addr string, opts OpenOptions) error {
	vfs := opts.VFS
	if vfs == nil {
		vfs = storage.OS
	}
	if relation.Bootstrapped(vfs, dir) {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("hazy: bootstrap replica: %w", err)
	}
	pos, err := replica.Bootstrap(addr, func(name string, data []byte) error {
		if filepath.Base(name) != name || name == "" {
			return fmt.Errorf("hazy: bootstrap replica: image file name %q", name)
		}
		return storage.WriteFileAtomic(vfs, filepath.Join(dir, name), data, true)
	})
	if err != nil {
		return err
	}
	return relation.PrimeReplicaManifest(vfs, dir, pos)
}

// replicaTarget feeds the applier's stream into the database under
// the statement lock.
type replicaTarget struct{ db *DB }

func (t replicaTarget) Apply(resume wal.Pos, payload []byte) error {
	db := t.db
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	meta, err := db.rel.ApplyShipped(resume, payload)
	if err != nil {
		return err
	}
	if meta != nil {
		return db.applyMeta(meta)
	}
	return nil
}

func (t replicaTarget) Commit() error {
	db := t.db
	db.stmtMu.Lock()
	defer db.stmtMu.Unlock()
	if err := db.rel.CommitLog(); err != nil {
		return err
	}
	db.publishSnapshots()
	db.repl.Publishes.Inc()
	return nil
}

// StartReplica puts the database in read-only replica mode and starts
// tailing the primary shipping at addr: mutations are rejected with a
// clear error, reads serve from republished view snapshots, and the
// stream resumes from the locally recovered cursor. logf (optional)
// receives connection-lifecycle lines. A terminal stream error parks
// the applier — the replica keeps serving its last applied state; see
// ReplicaErr — and PROMOTE at any time turns the database writable.
func (db *DB) StartReplica(addr string, logf func(format string, args ...any)) error {
	db.readOnly.Store(true)
	// Reconcile DDL whose shipped meta record outlived its side
	// effects (a crash between journal and reconcile), then publish so
	// reads never touch the structures the applier will mutate.
	if m := db.rel.LastMeta(); m != nil {
		if err := db.applyMeta(m); err != nil {
			return err
		}
	}
	db.publishSnapshots()
	a := replica.StartApplier(replicaTarget{db}, replica.Options{
		Addr:    addr,
		Resume:  db.rel.LastShipped(),
		Metrics: db.repl,
		Logf:    logf,
	})
	db.mu.Lock()
	db.applier = a
	db.mu.Unlock()
	return nil
}

// applyMeta reconciles a shipped catalog manifest: tables and views
// the primary declared but this replica lacks are created (views over
// an unregistered custom feature function park in the pending list,
// like Open). Idempotent — the manifest is a full snapshot, and
// existing objects are left alone.
func (db *DB) applyMeta(body []byte) error {
	var m metaManifest
	if err := json.Unmarshal(body, &m); err != nil {
		return fmt.Errorf("hazy: shipped meta record: %w", err)
	}
	for _, mt := range m.Tables {
		db.mu.RLock()
		_, haveT := db.tables[mt.Name]
		_, haveX := db.examples[mt.Name]
		db.mu.RUnlock()
		if haveT || haveX {
			continue
		}
		switch mt.Kind {
		case "entity":
			if _, err := db.createEntityTable(mt.Name, mt.TextCol); err != nil {
				return fmt.Errorf("hazy: reconcile table %q: %w", mt.Name, err)
			}
		case "example":
			if _, err := db.createExampleTable(mt.Name); err != nil {
				return fmt.Errorf("hazy: reconcile table %q: %w", mt.Name, err)
			}
		default:
			return fmt.Errorf("hazy: shipped meta record: table %q has unknown kind %q", mt.Name, mt.Kind)
		}
	}
	for _, mv := range m.Views {
		db.mu.RLock()
		_, have := db.views[mv.Name]
		db.mu.RUnlock()
		if have {
			continue
		}
		spec, err := mv.spec()
		if err != nil {
			return err
		}
		ffName := spec.FeatureFunction
		if ffName == "" {
			ffName = "tf_bag_of_words"
		}
		if !db.registry.Has(ffName) {
			db.mu.Lock()
			db.pending = append(db.pending, spec)
			db.mu.Unlock()
			continue
		}
		if _, err := db.createClassificationView(spec, true); err != nil {
			return fmt.Errorf("hazy: reconcile view %q: %w", mv.Name, err)
		}
	}
	db.publishSnapshots()
	return nil
}

// publishSnapshots republishes every snapshot-capable view's serving
// snapshot — the replica read surface. Views that cannot snapshot
// (on-disk architectures) keep serving live under the statement lock.
func (db *DB) publishSnapshots() {
	db.mu.RLock()
	defer db.mu.RUnlock()
	for _, cv := range db.views {
		sn, ok := cv.view.(core.Snapshotter)
		if !ok {
			continue
		}
		snap, err := sn.Snapshot()
		if err != nil {
			continue // keep the previous published snapshot
		}
		cv.pub.Store(snap)
	}
}

// Promote turns a replica into a writable primary at the exact
// position it had applied to: the applier stops (its last batch
// commits), the read-only gate lifts, reads return to the live
// structures, and the whole catalog is checkpointed. Safe to call on
// a replica whose applier already died of a terminal error — that is
// the failover case. Must not be called while holding StatementMu
// (the applier needs it to finish its in-flight record); the server
// routes PROMOTE around its statement lock for exactly that reason.
func (db *DB) Promote() error {
	db.mu.Lock()
	a := db.applier
	db.applier = nil
	db.mu.Unlock()
	if a == nil && !db.readOnly.Load() {
		return fmt.Errorf("hazy: not a replica (nothing to promote)")
	}
	if a != nil {
		a.Stop() //nolint:errcheck — a dead stream is the failover case, not a promote error
	}
	db.readOnly.Store(false)
	db.mu.RLock()
	for _, cv := range db.views {
		cv.pub.Store(nil)
	}
	db.mu.RUnlock()
	return db.Checkpoint()
}

// ReplicaErr returns the applier's terminal error, if the stream died
// of one (nil while healthy, or when not a replica).
func (db *DB) ReplicaErr() error {
	db.mu.RLock()
	a := db.applier
	db.mu.RUnlock()
	if a == nil {
		return nil
	}
	return a.Err()
}

// DisconnectReplica severs the replica's current stream connection,
// forcing a reconnect-and-resume cycle — an operational and testing
// aid. No-op when not a replica.
func (db *DB) DisconnectReplica() {
	db.mu.RLock()
	a := db.applier
	db.mu.RUnlock()
	if a != nil {
		a.Disconnect()
	}
}

// AppliedPos returns the primary position one past the last shipped
// record this database applied (zero when it never applied one).
func (db *DB) AppliedPos() wal.Pos { return db.rel.LastShipped() }

// WALEnd returns the committed end of this database's own write-ahead
// log — on a primary, the position a fully caught-up replica's
// AppliedPos converges to.
func (db *DB) WALEnd() wal.Pos {
	l := db.rel.Log()
	if l == nil {
		return wal.Pos{}
	}
	return l.CommittedEnd()
}
