package hazy

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hazy/internal/exec"
)

// buildQueryFixture declares a two-topic corpus, a hazy view over it,
// and n warm training examples.
func buildQueryFixture(t *testing.T, s *Session, view string, strategy string, n int) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE qp (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE qf (id BIGINT, label BIGINT) KEY id")
	r := rand.New(rand.NewSource(17))
	for id := int64(0); id < 60; id++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO qp VALUES (%d, '%s')", id, title(r, id%2 == 0)))
	}
	mustExec(t, s, fmt.Sprintf(`CREATE CLASSIFICATION VIEW %s KEY id
		ENTITIES FROM qp KEY id EXAMPLES FROM qf KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM STRATEGY %s`, view, strategy))
	for id := int64(0); id < int64(n); id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO qf VALUES (%d, %d)", id, label))
	}
}

// TestEpsColumnAndOrderedReads exercises the dialect growth — the eps
// view column, ORDER BY, LIMIT — against a real clustered view and
// checks the SQL answers agree with the Go-level surfaces, live and
// engined.
func TestEpsColumnAndOrderedReads(t *testing.T) {
	s := newSession(t)
	buildQueryFixture(t, s, "qv", "HAZY", 12)
	cv, err := s.DB().View("qv")
	if err != nil {
		t.Fatal(err)
	}

	for _, engined := range []bool{false, true} {
		if engined {
			mustExec(t, s, "ATTACH ENGINE TO qv")
		}
		origin := map[bool]string{false: "live", true: "snapshot"}[engined]

		// eps point read matches ClassView.Eps.
		r := mustExec(t, s, "SELECT eps FROM qv WHERE id = 7")
		eps, err := cv.Eps(7)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != 1 || r.Rows[0][0] != strconv.FormatFloat(eps, 'g', -1, 64) {
			t.Fatalf("engined=%v: SELECT eps WHERE id=7 = %+v, want %g", engined, r.Rows, eps)
		}

		// The eps-range scan returns exactly the full scan filtered to
		// the band, in eps order.
		full := mustExec(t, s, "SELECT id, class, eps FROM qv")
		band := mustExec(t, s, "SELECT id, eps FROM qv WHERE eps >= -0.2 AND eps <= 0.2")
		want := map[string]bool{}
		for _, row := range full.Rows {
			if e, _ := strconv.ParseFloat(row[2], 64); e >= -0.2 && e <= 0.2 {
				want[row[0]] = true
			}
		}
		if len(band.Rows) != len(want) {
			t.Fatalf("engined=%v: eps band %d rows, want %d", engined, len(band.Rows), len(want))
		}
		for i, row := range band.Rows {
			if !want[row[0]] {
				t.Fatalf("engined=%v: unexpected band row %v", engined, row)
			}
			if i > 0 {
				prev, _ := strconv.ParseFloat(band.Rows[i-1][1], 64)
				cur, _ := strconv.ParseFloat(row[1], 64)
				if cur < prev {
					t.Fatalf("engined=%v: band not eps-ascending at %d", engined, i)
				}
			}
		}

		// ORDER BY ABS(eps) LIMIT k is the UNCERTAIN verb.
		r = mustExec(t, s, "SELECT id FROM qv ORDER BY ABS(eps) LIMIT 5")
		ids, err := s.MostUncertain("qv", 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != len(ids) {
			t.Fatalf("engined=%v: uncertain rows %v vs %v", engined, r.Rows, ids)
		}
		for i, id := range ids {
			if r.Rows[i][0] != strconv.FormatInt(id, 10) {
				t.Fatalf("engined=%v: uncertain row %d = %v, want %d", engined, i, r.Rows[i], id)
			}
		}

		// ORDER BY id DESC LIMIT walks the tail.
		r = mustExec(t, s, "SELECT id FROM qv ORDER BY id DESC LIMIT 3")
		if len(r.Rows) != 3 || r.Rows[0][0] != "59" || r.Rows[2][0] != "57" {
			t.Fatalf("engined=%v: order desc limit = %+v", engined, r.Rows)
		}

		// An inverted eps interval is empty, not a crash; LIMIT 0
		// suppresses even the COUNT row.
		r = mustExec(t, s, "SELECT id FROM qv WHERE eps >= 1.0 AND eps <= -1.0")
		if len(r.Rows) != 0 {
			t.Fatalf("engined=%v: inverted eps range = %+v", engined, r.Rows)
		}
		r = mustExec(t, s, "SELECT COUNT(*) FROM qv WHERE class = 1 LIMIT 0")
		if len(r.Rows) != 0 {
			t.Fatalf("engined=%v: count limit 0 = %+v", engined, r.Rows)
		}

		// EXPLAIN names the origin the plan reads from.
		for stmt, wantPlan := range map[string]string{
			"EXPLAIN SELECT class FROM qv WHERE id = 3":           "PointRead(qv, " + origin + ", id=3)",
			"EXPLAIN SELECT id FROM qv WHERE class = 1":           "MembersScan(qv, " + origin + ")",
			"EXPLAIN SELECT COUNT(*) FROM qv WHERE class = 1":     "MembersCount(qv, " + origin + ")",
			"EXPLAIN SELECT id FROM qv WHERE eps <= 0.5":          "EpsRange(qv, " + origin + ", eps <= 0.5)",
			"EXPLAIN SELECT id FROM qv ORDER BY ABS(eps) LIMIT 4": "Uncertain(qv, " + origin + ", k=4)",
		} {
			r := mustExec(t, s, stmt)
			joined := ""
			for _, row := range r.Rows {
				joined += row[0] + "\n"
			}
			if !strings.Contains(joined, wantPlan) {
				t.Fatalf("engined=%v: %s\nplan:\n%s\nmissing %q", engined, stmt, joined, wantPlan)
			}
		}
	}

	// Selecting through Query streams the same rows Exec materializes.
	rows, err := s.Query("SELECT id, class FROM qv")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	res := mustExec(t, s, "SELECT id, class FROM qv")
	for i := 0; ; i++ {
		row, ok, err := rows.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(res.Rows) {
				t.Fatalf("Query streamed %d rows, Exec returned %d", i, len(res.Rows))
			}
			break
		}
		if strings.Join(row, ",") != strings.Join(res.Rows[i], ",") {
			t.Fatalf("row %d: Query %v vs Exec %v", i, row, res.Rows[i])
		}
	}
}

// TestEpsRequiresClustering: the naive strategy keeps no eps, and the
// planner says so instead of fabricating a column.
func TestEpsRequiresClustering(t *testing.T) {
	s := newSession(t)
	buildQueryFixture(t, s, "nv", "NAIVE", 4)
	for _, stmt := range []string{
		"SELECT eps FROM nv",
		"SELECT id FROM nv WHERE eps > 0",
		"SELECT id FROM nv ORDER BY ABS(eps) LIMIT 2",
		"EXPLAIN SELECT eps FROM nv",
	} {
		if _, err := s.Exec(stmt); err == nil || !strings.Contains(err.Error(), "eps") {
			t.Fatalf("%s → %v, want eps-clustering error", stmt, err)
		}
	}
	// Non-eps reads still plan fine over the naive layout.
	r := mustExec(t, s, "SELECT COUNT(*) FROM nv WHERE class = 1")
	if len(r.Rows) != 1 {
		t.Fatalf("naive members count: %+v", r)
	}
	if r := mustExec(t, s, "SELECT id, class FROM nv LIMIT 5"); len(r.Rows) != 5 {
		t.Fatalf("naive full scan limit: %+v", r)
	}
}

// TestConcurrentSQLScanVsEngineIngest races every snapshot-backed
// plan shape — full scan, eps range, members, point read, uncertain,
// plus table scans of the entity table the engine is inserting into —
// against a live engine's async ingest. Run under -race this pins
// that SELECT streaming never touches mutable engine state.
func TestConcurrentSQLScanVsEngineIngest(t *testing.T) {
	// A small batch size forces every streaming statement through many
	// batch refills while the engine mutates underneath, so -race sees
	// the refill path, not just the first fill.
	defer exec.SetBatchSize(exec.BatchSize())
	exec.SetBatchSize(7)
	s := newSession(t)
	buildQueryFixture(t, s, "cv", "HAZY", 12)
	mustExec(t, s, "ATTACH ENGINE TO cv QUEUE 256 BATCH 32")
	db := s.DB()

	const writers, readers, per = 2, 4, 80
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := db.NewSession()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				id := int64(1000 + w*per + i)
				if err := ws.AddAsync("cv", id, title(r, id%2 == 0)); err != nil {
					errs <- err
					return
				}
				// Examples are keyed by entity id: each writer trains a
				// disjoint slice of the warm corpus, once per id.
				if tid := int64(12 + w*24 + i); i < 24 {
					if err := ws.TrainAsync("cv", tid, 1-2*int(tid%2)); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- ws.Flush("cv")
		}(w)
	}
	stmts := []string{
		"SELECT id, class FROM cv",
		"SELECT id, eps FROM cv WHERE eps >= -0.5 AND eps <= 0.5",
		"SELECT COUNT(*) FROM cv WHERE class = 1",
		"SELECT class FROM cv WHERE id = 7",
		"SELECT id FROM cv ORDER BY ABS(eps) LIMIT 5",
		"SELECT id, eps FROM cv ORDER BY eps DESC LIMIT 7",
		"SELECT id FROM cv WHERE eps >= -0.5 LIMIT 9",
		"EXPLAIN SELECT id FROM cv WHERE eps > 0",
		"EXPLAIN ANALYZE SELECT COUNT(*) FROM cv WHERE eps >= -0.5 AND eps <= 0.5",
		"SELECT COUNT(*) FROM qp",
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rs := db.NewSession()
			for i := 0; i < per; i++ {
				if _, err := rs.Exec(stmts[(g+i)%len(stmts)]); err != nil {
					errs <- fmt.Errorf("%s: %w", stmts[(g+i)%len(stmts)], err)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Drain and check the final state is consistent end to end.
	mustExec(t, s, "DETACH ENGINE FROM cv")
	r := mustExec(t, s, "SELECT COUNT(*) FROM cv")
	if r.Rows[0][0] != strconv.Itoa(60+writers*per) {
		t.Fatalf("final entity count %v, want %d", r.Rows, 60+writers*per)
	}
}

// TestBatchSizeEndToEnd replays the dialect through the Session
// surface at batch sizes 1 and 7 and checks the rendered results are
// identical to the default 1024 — the SQL answer must not depend on
// where batch boundaries fall, live or engined.
func TestBatchSizeEndToEnd(t *testing.T) {
	defer exec.SetBatchSize(exec.BatchSize())
	s := newSession(t)
	buildQueryFixture(t, s, "qv", "HAZY", 12)
	stmts := []string{
		"SELECT id, class, eps FROM qv",
		"SELECT id, eps FROM qv WHERE eps >= -0.5 AND eps <= 0.5",
		"SELECT COUNT(*) FROM qv WHERE class = 1",
		"SELECT id FROM qv ORDER BY ABS(eps) LIMIT 5",
		"SELECT id, eps FROM qv ORDER BY eps DESC LIMIT 7",
		"SELECT id FROM qv WHERE eps >= -0.5 LIMIT 9",
		"SELECT id FROM qv ORDER BY id DESC LIMIT 3",
		"SELECT COUNT(*) FROM qp",
	}
	for _, engined := range []bool{false, true} {
		if engined {
			mustExec(t, s, "ATTACH ENGINE TO qv")
		}
		exec.SetBatchSize(1024)
		want := map[string][][]string{}
		for _, q := range stmts {
			want[q] = mustExec(t, s, q).Rows
		}
		for _, size := range []int{1, 7} {
			exec.SetBatchSize(size)
			for _, q := range stmts {
				got := mustExec(t, s, q).Rows
				if !reflect.DeepEqual(got, want[q]) {
					t.Errorf("engined=%v batch=%d %s:\nrows %v\nwant %v", engined, size, q, got, want[q])
				}
			}
		}
	}
}

// TestEmptyViewQueries: a view over an empty entity table streams
// zero rows (and COUNT streams one zero) through every plan shape.
func TestEmptyViewQueries(t *testing.T) {
	s := newSession(t)
	mustExec(t, s, "CREATE TABLE zp (id BIGINT, title TEXT) KEY id")
	mustExec(t, s, "CREATE TABLE zf (id BIGINT, label BIGINT) KEY id")
	mustExec(t, s, `CREATE CLASSIFICATION VIEW zv KEY id
		ENTITIES FROM zp KEY id EXAMPLES FROM zf KEY id LABEL label
		FEATURE FUNCTION tf_bag_of_words USING SVM STRATEGY HAZY`)
	for stmt, wantRows := range map[string]int{
		"SELECT id, class, eps FROM zv":                      0,
		"SELECT id FROM zv WHERE eps >= -1.0 AND eps <= 1.0": 0,
		"SELECT id FROM zv WHERE class = 1":                  0,
		"SELECT id FROM zv ORDER BY ABS(eps) LIMIT 3":        0,
		"SELECT id FROM zv ORDER BY id DESC LIMIT 3":         0,
		"SELECT COUNT(*) FROM zv":                            1,
		"SELECT COUNT(*) FROM zv WHERE class = 1":            1,
		"SELECT COUNT(*) FROM zp":                            1,
	} {
		r := mustExec(t, s, stmt)
		if len(r.Rows) != wantRows {
			t.Errorf("%s: %d rows (%v), want %d", stmt, len(r.Rows), r.Rows, wantRows)
		}
		if wantRows == 1 && r.Rows[0][0] != "0" {
			t.Errorf("%s: count = %v, want 0", stmt, r.Rows[0])
		}
	}
}

// TestShowStatsAndExplainAnalyze covers the two SQL surfaces of the
// metrics registry: SHOW STATS renders the full registry (and FOR
// narrows to one view's collectors), and EXPLAIN ANALYZE both
// annotates the plan and accumulates per-operator totals into the
// registry's shared exec counters.
func TestShowStatsAndExplainAnalyze(t *testing.T) {
	s := newSession(t)
	buildQueryFixture(t, s, "qv", "HAZY", 12)

	// EXPLAIN ANALYZE annotates every node with deterministic rows=
	// and a wall time.
	r := mustExec(t, s, "EXPLAIN ANALYZE SELECT COUNT(*) FROM qv WHERE eps >= -100.0 AND eps <= 100.0")
	if len(r.Rows) != 2 {
		t.Fatalf("EXPLAIN ANALYZE plan = %+v, want 2 nodes", r.Rows)
	}
	if want := "Count (rows=1 "; !strings.HasPrefix(r.Rows[0][0], want) {
		t.Errorf("root node %q, want prefix %q", r.Rows[0][0], want)
	}
	if !strings.Contains(r.Rows[1][0], "(rows=60 ") || !strings.Contains(r.Rows[1][0], "time=") {
		t.Errorf("leaf node %q, want rows=60 and a time annotation", r.Rows[1][0])
	}

	// The analyzed run fed the shared per-operator registry counters.
	stats := mustExec(t, s, "SHOW STATS")
	var sawExecRows, sawViewMetric bool
	for _, row := range stats.Rows {
		if strings.HasPrefix(row[0], `hazy_exec_rows_total{op="Count"}`) && row[1] != "0" {
			sawExecRows = true
		}
		if strings.HasPrefix(row[0], "hazy_view_") {
			sawViewMetric = true
		}
	}
	if !sawExecRows {
		t.Errorf("SHOW STATS missing nonzero hazy_exec_rows_total{op=\"Count\"}:\n%+v", stats.Rows)
	}
	if !sawViewMetric {
		t.Errorf("SHOW STATS missing hazy_view_* collectors")
	}

	// FOR narrows to collectors labeled with the view's name, and
	// every returned series carries that label.
	forView := mustExec(t, s, "SHOW STATS FOR qv")
	if len(forView.Rows) == 0 || len(forView.Rows) >= len(stats.Rows) {
		t.Fatalf("SHOW STATS FOR qv returned %d rows (full registry has %d)", len(forView.Rows), len(stats.Rows))
	}
	for _, row := range forView.Rows {
		if !strings.Contains(row[0], `view="qv"`) {
			t.Errorf("SHOW STATS FOR qv row %q lacks the view label", row[0])
		}
	}
}
