package hazy

import (
	"math/rand"
	"testing"
)

// TestReopenRecoversTablesAndRebuildsView is the paper's §3.5.1
// durability story end to end: entities and training examples
// persist; the classification view is recomputed on reopen from the
// recovered tables and must agree with the pre-restart view.
func TestReopenRecoversTablesAndRebuildsView(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(77))

	truth := map[int64]bool{}
	var before map[int64]int
	{
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		papers, err := db.CreateEntityTable("papers", "title")
		if err != nil {
			t.Fatal(err)
		}
		feedback, err := db.CreateExampleTable("feedback")
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 120; id++ {
			isDB := r.Float64() < 0.5
			truth[id] = isDB
			if err := papers.InsertText(id, title(r, isDB)); err != nil {
				t.Fatal(err)
			}
		}
		view, err := db.CreateClassificationView(ViewSpec{
			Name: "labeled", Entities: "papers", Examples: "feedback",
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 80; id++ {
			label := -1
			if truth[id] {
				label = 1
			}
			if err := feedback.InsertExample(id, label); err != nil {
				t.Fatal(err)
			}
		}
		before = map[int64]int{}
		for id := int64(0); id < 120; id++ {
			l, err := view.Label(id)
			if err != nil {
				t.Fatal(err)
			}
			before[id] = l
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: tables recover from the manifest; the view is
	// re-declared and retrains from the persisted examples.
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, err := db.EntityTableByName("papers")
	if err != nil {
		t.Fatal(err)
	}
	if papers.Len() != 120 {
		t.Fatalf("recovered %d papers", papers.Len())
	}
	feedback, err := db.ExampleTableByName("feedback")
	if err != nil {
		t.Fatal(err)
	}
	if feedback.Len() != 80 {
		t.Fatalf("recovered %d examples", feedback.Len())
	}
	view, err := db.CreateClassificationView(ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 120; id++ {
		got, err := view.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != before[id] {
			t.Fatalf("label(%d)=%d before restart, %d after", id, before[id], got)
		}
	}
	// The recovered tables remain writable and trigger-connected.
	if err := papers.InsertText(500, "sql query optimizer relational database index"); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Label(500); err != nil {
		t.Fatal(err)
	}
	if err := feedback.InsertExample(500, 1); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteExampleRetrains checks the facade's §2.2-footnote path:
// deleting a training example retrains the model from scratch on the
// remaining examples.
func TestDeleteExampleRetrains(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, _ := db.CreateEntityTable("papers", "title")
	feedback, _ := db.CreateExampleTable("feedback")
	r := rand.New(rand.NewSource(78))
	for id := int64(0); id < 60; id++ {
		papers.InsertText(id, title(r, id%2 == 0))
	}
	view, err := db.CreateClassificationView(ViewSpec{
		Name: "v", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 40; id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		if err := feedback.InsertExample(id, label); err != nil {
			t.Fatal(err)
		}
	}
	// Poison the model with deliberately wrong labels, then delete
	// them: the view must recover its original behaviour.
	for id := int64(40); id < 50; id++ {
		wrong := 1
		if id%2 == 0 {
			wrong = -1
		}
		if err := feedback.InsertExample(id, wrong); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(40); id < 50; id++ {
		if err := feedback.DeleteExample(id); err != nil {
			t.Fatal(err)
		}
	}
	if feedback.Len() != 40 {
		t.Fatalf("len=%d after deletes", feedback.Len())
	}
	correct := 0
	for id := int64(0); id < 60; id++ {
		got, err := view.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		want := -1
		if id%2 == 0 {
			want = 1
		}
		if got == want {
			correct++
		}
	}
	if acc := float64(correct) / 60; acc < 0.9 {
		t.Fatalf("accuracy %.2f after deleting poison examples", acc)
	}
	// Relabeling also retrains.
	if err := feedback.RelabelExample(0, -1); err != nil {
		t.Fatal(err)
	}
	if err := feedback.RelabelExample(0, 5); err == nil {
		t.Fatal("bad relabel accepted")
	}
}
