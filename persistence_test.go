package hazy

import (
	"math/rand"
	"testing"
)

// TestReopenRecoversTablesAndRebuildsView is the paper's §3.5.1
// durability story end to end: entities and training examples
// persist; the classification view's declaration is recovered from
// the catalog manifest and its contents are recomputed on reopen
// from the recovered tables, so it must agree with the pre-restart
// view without any re-declaration.
func TestReopenRecoversTablesAndRebuildsView(t *testing.T) {
	dir := t.TempDir()
	r := rand.New(rand.NewSource(77))

	truth := map[int64]bool{}
	var before map[int64]int
	{
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		papers, err := db.CreateEntityTable("papers", "title")
		if err != nil {
			t.Fatal(err)
		}
		feedback, err := db.CreateExampleTable("feedback")
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 120; id++ {
			isDB := r.Float64() < 0.5
			truth[id] = isDB
			if err := papers.InsertText(id, title(r, isDB)); err != nil {
				t.Fatal(err)
			}
		}
		view, err := db.CreateClassificationView(ViewSpec{
			Name: "labeled", Entities: "papers", Examples: "feedback",
		})
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 80; id++ {
			label := -1
			if truth[id] {
				label = 1
			}
			if err := feedback.InsertExample(id, label); err != nil {
				t.Fatal(err)
			}
		}
		before = map[int64]int{}
		for id := int64(0); id < 120; id++ {
			l, err := view.Label(id)
			if err != nil {
				t.Fatal(err)
			}
			before[id] = l
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen: tables recover from the manifest; the view is
	// re-declared and retrains from the persisted examples.
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, err := db.EntityTableByName("papers")
	if err != nil {
		t.Fatal(err)
	}
	if papers.Len() != 120 {
		t.Fatalf("recovered %d papers", papers.Len())
	}
	feedback, err := db.ExampleTableByName("feedback")
	if err != nil {
		t.Fatal(err)
	}
	if feedback.Len() != 80 {
		t.Fatalf("recovered %d examples", feedback.Len())
	}
	// The view was re-declared by Open from the manifest — no
	// CreateClassificationView needed, and a duplicate declaration is
	// rejected like any other.
	view, err := db.View("labeled")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateClassificationView(ViewSpec{
		Name: "labeled", Entities: "papers", Examples: "feedback",
	}); err == nil {
		t.Fatal("re-declaring the recovered view succeeded")
	}
	for id := int64(0); id < 120; id++ {
		got, err := view.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != before[id] {
			t.Fatalf("label(%d)=%d before restart, %d after", id, before[id], got)
		}
	}
	// The recovered tables remain writable and trigger-connected.
	if err := papers.InsertText(500, "sql query optimizer relational database index"); err != nil {
		t.Fatal(err)
	}
	if _, err := view.Label(500); err != nil {
		t.Fatal(err)
	}
	if err := feedback.InsertExample(500, 1); err != nil {
		t.Fatal(err)
	}
}

// TestReopenRecoversTableKindsFromManifest is the regression for the
// seed's schema-shape guessing: table kinds now come from the
// manifest, so an entity table whose text column is named "label" —
// which shares its column NAMES with an examples table — and tables
// that a 2-column heuristic would misfile all come back with their
// declared kinds, and the declared views over them are recovered.
func TestReopenRecoversTableKindsFromManifest(t *testing.T) {
	dir := t.TempDir()
	{
		db, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		// An entity table with a trap column name.
		if _, err := db.CreateEntityTable("docs", "label"); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateExampleTable("votes"); err != nil {
			t.Fatal(err)
		}
		docs, _ := db.EntityTableByName("docs")
		docs.InsertText(1, "relational database query")
		docs.InsertText(2, "kernel interrupt scheduler")
		if _, err := db.CreateClassificationView(ViewSpec{
			Name: "tagged", Entities: "docs", Examples: "votes", Method: "logistic",
		}); err != nil {
			t.Fatal(err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
	db, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	docs, err := db.EntityTableByName("docs")
	if err != nil {
		t.Fatalf("docs not recovered as an entity table: %v", err)
	}
	if got := docs.TextColumn(); got != "label" {
		t.Fatalf("recovered text column %q, want %q", got, "label")
	}
	if _, err := db.ExampleTableByName("docs"); err == nil {
		t.Fatal("entity table also recovered as an examples table")
	}
	if _, err := db.ExampleTableByName("votes"); err != nil {
		t.Fatalf("votes not recovered as an examples table: %v", err)
	}
	v, err := db.View("tagged")
	if err != nil {
		t.Fatalf("view not recovered from manifest: %v", err)
	}
	if got := v.Method(); got != "logistic" {
		t.Fatalf("recovered view method %q, want %q", got, "logistic")
	}
	// The recovered stack is live: feedback maintains the view.
	votes, _ := db.ExampleTableByName("votes")
	if err := votes.InsertExample(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Label(2); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteExampleRetrains checks the facade's §2.2-footnote path:
// deleting a training example retrains the model from scratch on the
// remaining examples.
func TestDeleteExampleRetrains(t *testing.T) {
	db, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	papers, _ := db.CreateEntityTable("papers", "title")
	feedback, _ := db.CreateExampleTable("feedback")
	r := rand.New(rand.NewSource(78))
	for id := int64(0); id < 60; id++ {
		papers.InsertText(id, title(r, id%2 == 0))
	}
	view, err := db.CreateClassificationView(ViewSpec{
		Name: "v", Entities: "papers", Examples: "feedback",
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 40; id++ {
		label := -1
		if id%2 == 0 {
			label = 1
		}
		if err := feedback.InsertExample(id, label); err != nil {
			t.Fatal(err)
		}
	}
	// Poison the model with deliberately wrong labels, then delete
	// them: the view must recover its original behaviour.
	for id := int64(40); id < 50; id++ {
		wrong := 1
		if id%2 == 0 {
			wrong = -1
		}
		if err := feedback.InsertExample(id, wrong); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(40); id < 50; id++ {
		if err := feedback.DeleteExample(id); err != nil {
			t.Fatal(err)
		}
	}
	if feedback.Len() != 40 {
		t.Fatalf("len=%d after deletes", feedback.Len())
	}
	correct := 0
	for id := int64(0); id < 60; id++ {
		got, err := view.Label(id)
		if err != nil {
			t.Fatal(err)
		}
		want := -1
		if id%2 == 0 {
			want = 1
		}
		if got == want {
			correct++
		}
	}
	if acc := float64(correct) / 60; acc < 0.9 {
		t.Fatalf("accuracy %.2f after deleting poison examples", acc)
	}
	// Relabeling also retrains.
	if err := feedback.RelabelExample(0, -1); err != nil {
		t.Fatal(err)
	}
	if err := feedback.RelabelExample(0, 5); err == nil {
		t.Fatal("bad relabel accepted")
	}
}
