// Benchmarks regenerating the paper's evaluation, one per table or
// figure, at laptop scale via the Go testing harness:
//
//	go test -bench=. -benchmem
//
// The cmd/hazybench tool runs the same experiments with the paper's
// table layouts and larger defaults; these benches are the
// self-contained `testing.B` versions.
package hazy

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"

	"hazy/internal/core"
	"hazy/internal/dataset"
	"hazy/internal/exec"
	"hazy/internal/feature"
	"hazy/internal/learn"
	"hazy/internal/multiclass"
	"hazy/internal/skiing"
)

// benchScale keeps the testing.B versions quick; cmd/hazybench runs
// the full-size tables.
const benchScale = 0.08

var (
	dataCache   = map[string]*dataset.Data{}
	dataCacheMu sync.Mutex
)

func benchData(spec dataset.Spec) *dataset.Data {
	dataCacheMu.Lock()
	defer dataCacheMu.Unlock()
	key := fmt.Sprintf("%s-%d", spec.Name, spec.Entities)
	if d, ok := dataCache[key]; ok {
		return d
	}
	d := dataset.Generate(spec)
	dataCache[key] = d
	return d
}

func benchView(b *testing.B, d *dataset.Data, arch core.Arch, strat core.Strategy, mode core.Mode) core.View {
	b.Helper()
	norm := 2.0
	if !d.Spec.Dense {
		norm = 0 // defaults to ∞ in Options
	}
	v, err := core.New(arch, strat, b.TempDir(), 1024, d.Entities, core.Options{
		Mode: mode,
		Norm: norm,
		SGD:  learn.SGDConfig{Eta0: 0.5},
		Warm: d.Stream(800),
	})
	if err != nil {
		b.Fatal(err)
	}
	return v
}

var benchGrid = []struct {
	tech  string
	arch  core.Arch
	strat core.Strategy
}{
	{"OD-Naive", core.OnDisk, core.Naive},
	{"OD-Hazy", core.OnDisk, core.HazyStrategy},
	{"Hybrid", core.HybridArch, core.HazyStrategy},
	{"MM-Naive", core.MainMemory, core.Naive},
	{"MM-Hazy", core.MainMemory, core.HazyStrategy},
}

var benchSets = []dataset.Spec{dataset.Forest, dataset.DBLife, dataset.Citeseer}

// BenchmarkFig3Stats regenerates the Figure 3 statistics pass.
func BenchmarkFig3Stats(b *testing.B) {
	for _, spec := range benchSets {
		b.Run(spec.Name, func(b *testing.B) {
			d := benchData(spec.Scale(benchScale))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if st := d.Stats(); st.Entities == 0 {
					b.Fatal("empty stats")
				}
			}
		})
	}
}

// BenchmarkFig4aEagerUpdate regenerates Figure 4(A): one op = one
// training-example update against an eagerly maintained view.
func BenchmarkFig4aEagerUpdate(b *testing.B) {
	for _, g := range benchGrid {
		for _, spec := range benchSets {
			b.Run(g.tech+"/"+spec.Name, func(b *testing.B) {
				d := benchData(spec.Scale(benchScale))
				v := benchView(b, d, g.arch, g.strat, core.Eager)
				stream := d.Stream(b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := v.Update(stream[i].F, stream[i].Label); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig4bLazyAllMembers regenerates Figure 4(B): one op = one
// lazy update plus one All Members count. The update keeps the model
// drifting; for the slow (naive) cells the scan dominates the op, so
// relative numbers carry the figure's shape. cmd/hazybench times the
// scans in isolation.
func BenchmarkFig4bLazyAllMembers(b *testing.B) {
	for _, g := range benchGrid {
		for _, spec := range benchSets {
			b.Run(g.tech+"/"+spec.Name, func(b *testing.B) {
				d := benchData(spec.Scale(benchScale))
				v := benchView(b, d, g.arch, g.strat, core.Lazy)
				stream := d.Stream(b.N)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := v.Update(stream[i].F, stream[i].Label); err != nil {
						b.Fatal(err)
					}
					if _, err := v.CountMembers(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig5SingleEntity regenerates Figure 5: one op = one point
// read of a random entity.
func BenchmarkFig5SingleEntity(b *testing.B) {
	archs := []struct {
		name string
		arch core.Arch
	}{{"OD", core.OnDisk}, {"Hybrid", core.HybridArch}, {"MM", core.MainMemory}}
	for _, mode := range []core.Mode{core.Eager, core.Lazy} {
		for _, a := range archs {
			b.Run(fmt.Sprintf("%s/%s", a.name, mode), func(b *testing.B) {
				d := benchData(dataset.DBLife.Scale(benchScale))
				v := benchView(b, d, a.arch, core.HazyStrategy, mode)
				for _, ex := range d.Stream(30) {
					if err := v.Update(ex.F, ex.Label); err != nil {
						b.Fatal(err)
					}
				}
				r := rand.New(rand.NewSource(1))
				n := len(d.Entities)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := v.Label(int64(r.Intn(n))); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6bHybridBuffer regenerates Figure 6(B): point reads
// against hybrids with increasing buffer fractions.
func BenchmarkFig6bHybridBuffer(b *testing.B) {
	for _, buf := range []float64{0.01, 0.10, 0.50} {
		b.Run(fmt.Sprintf("buffer=%g%%", buf*100), func(b *testing.B) {
			d := benchData(dataset.DBLife.Scale(benchScale))
			v, err := core.NewHybridView(b.TempDir(), 1024, d.Entities, core.Options{
				Mode: core.Eager, SGD: learn.SGDConfig{Eta0: 0.5},
				Warm: d.Stream(800), BufferFrac: buf,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, ex := range d.Stream(100) {
				if err := v.Update(ex.F, ex.Label); err != nil {
					b.Fatal(err)
				}
			}
			r := rand.New(rand.NewSource(2))
			n := len(d.Entities)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.Label(int64(r.Intn(n))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig10Training regenerates Figure 10: full training runs of
// the batch baseline vs incremental SGD.
func BenchmarkFig10Training(b *testing.B) {
	d := benchData(dataset.Magic.Scale(benchScale))
	train := d.LabeledEntities()
	b.Run("BatchSVM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			learn.BatchSVM{MaxIter: 60}.Fit(train)
		}
	})
	b.Run("SGD", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s := learn.NewSGD(learn.SGDConfig{Eta0: 0.5})
			for _, ex := range train {
				s.Train(ex.F, ex.Label)
			}
		}
	})
}

// BenchmarkFig11aScalability regenerates Figure 11(A): eager Hazy-MM
// update cost at growing data sizes.
func BenchmarkFig11aScalability(b *testing.B) {
	for _, mult := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("%gx", mult), func(b *testing.B) {
			d := benchData(dataset.Citeseer.Scale(benchScale * mult))
			v := benchView(b, d, core.MainMemory, core.HazyStrategy, core.Eager)
			stream := d.Stream(b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Update(stream[i].F, stream[i].Label); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11bScaleup regenerates Figure 11(B): parallel point
// reads on the main-memory architecture.
func BenchmarkFig11bScaleup(b *testing.B) {
	d := benchData(dataset.Forest.Scale(benchScale))
	v := benchView(b, d, core.MainMemory, core.HazyStrategy, core.Eager)
	for _, ex := range d.Stream(50) {
		if err := v.Update(ex.F, ex.Label); err != nil {
			b.Fatal(err)
		}
	}
	n := len(d.Entities)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rand.New(rand.NewSource(3))
		for pb.Next() {
			if _, err := v.Label(int64(r.Intn(n))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// fig12aViews caches the expensive RFF-transformed view per feature
// length; the testing framework re-enters sub-benchmarks several
// times while calibrating b.N, and rebuilding the transform each time
// dominates the run.
var fig12aViews = map[int]*core.MemView{}

// BenchmarkFig12aFeatureLength regenerates Figure 12(A): lazy All
// Members over random-Fourier-feature vectors of growing length.
func BenchmarkFig12aFeatureLength(b *testing.B) {
	base := benchData(dataset.Forest.Scale(benchScale * 0.5))
	for _, length := range []int{300, 900, 1500} {
		b.Run(fmt.Sprintf("D=%d", length), func(b *testing.B) {
			v, ok := fig12aViews[length]
			if !ok {
				rff := feature.NewRFF(feature.Gaussian, base.Spec.Features, length, 1, 42)
				ents := make([]core.Entity, len(base.Entities))
				for i, e := range base.Entities {
					ents[i] = core.Entity{ID: e.ID, F: rff.Transform(e.F)}
				}
				v = core.NewMemView(ents, core.HazyStrategy, core.Options{
					Mode: core.Lazy, Norm: 2, SGD: learn.SGDConfig{Eta0: 0.5},
				})
				for i := 0; i < 30; i++ {
					ex := base.Example()
					if err := v.Update(rff.Transform(ex.F), ex.Label); err != nil {
						b.Fatal(err)
					}
				}
				fig12aViews[length] = v
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.CountMembers(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12bMulticlass regenerates Figure 12(B): eager
// multiclass updates with a growing label count.
func BenchmarkFig12bMulticlass(b *testing.B) {
	d := benchData(dataset.Forest.Scale(benchScale * 0.5))
	ids := make([]int64, len(d.Entities))
	for i, e := range d.Entities {
		ids[i] = e.ID
	}
	for _, k := range []int{2, 4, 7} {
		b.Run(fmt.Sprintf("labels=%d", k), func(b *testing.B) {
			mc, err := multiclass.New(k, ids, func(int) (core.View, error) {
				return core.NewMemView(d.Entities, core.HazyStrategy, core.Options{
					Mode: core.Eager, Norm: 2,
					SGD:  learn.SGDConfig{Eta0: 0.5},
					Warm: d.Stream(200),
				}), nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, cls := d.MulticlassExample()
				if err := mc.Update(f, cls%k); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig13BandMaintenance regenerates the Figure 13 machinery:
// the per-update watermark + band-reclassification work.
func BenchmarkFig13BandMaintenance(b *testing.B) {
	d := benchData(dataset.DBLife.Scale(benchScale))
	v := benchView(b, d, core.MainMemory, core.HazyStrategy, core.Eager)
	stream := d.Stream(b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Update(stream[i].F, stream[i].Label); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(v.Stats().BandTuples), "band-tuples")
}

// SQL read-path benchmark ---------------------------------------------

// sqlBenchEntities sizes the serving corpus the planner benches run
// against — large enough that a full scan visibly loses to the
// pushed-down plans.
const sqlBenchEntities = 50_000

var (
	sqlBenchOnce sync.Once
	sqlBenchSess *Session
	sqlBenchErr  error
)

// sqlBenchTitle is a deterministic two-topic corpus line.
func sqlBenchTitle(id int64) string {
	if id%2 == 0 {
		return fmt.Sprintf("kernel scheduler interrupt driver paging memory %d", id)
	}
	return fmt.Sprintf("relational database query optimization index transactions %d", id)
}

// sqlBenchSession lazily builds one 50k-entity engined view and keeps
// it for the whole bench process (the temp dir is left to the OS, as
// the DB must outlive every sub-benchmark).
func sqlBenchSession(b *testing.B) *Session {
	b.Helper()
	sqlBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "hazy-sqlbench-*")
		if err != nil {
			sqlBenchErr = err
			return
		}
		db, err := Open(dir)
		if err != nil {
			sqlBenchErr = err
			return
		}
		papers, err := db.CreateEntityTable("papers", "title")
		if err != nil {
			sqlBenchErr = err
			return
		}
		feedback, err := db.CreateExampleTable("feedback")
		if err != nil {
			sqlBenchErr = err
			return
		}
		for id := int64(0); id < sqlBenchEntities; id++ {
			if err := papers.InsertText(id, sqlBenchTitle(id)); err != nil {
				sqlBenchErr = err
				return
			}
		}
		// Warm examples before declaration (one corpus pass, one
		// clustering), then a few post-declaration trains so the
		// watermark band is non-degenerate.
		for id := int64(0); id < 400; id++ {
			if err := feedback.InsertExample(id, 1-2*int(id%2)); err != nil {
				sqlBenchErr = err
				return
			}
		}
		if _, err := db.CreateClassificationView(ViewSpec{
			Name: "served", Entities: "papers", Examples: "feedback", Method: "svm",
		}); err != nil {
			sqlBenchErr = err
			return
		}
		for id := int64(400); id < 430; id++ {
			if err := feedback.InsertExample(id, 1-2*int(id%2)); err != nil {
				sqlBenchErr = err
				return
			}
		}
		if _, err := db.AttachEngine("served", EngineOptions{}); err != nil {
			sqlBenchErr = err
			return
		}
		// A second, partition-striped view over the same corpus, left
		// unmanaged so its reads exercise the live scatter-gather merge
		// scan (engined snapshots are pre-merged).
		if _, err := db.CreateClassificationView(ViewSpec{
			Name: "striped_served", Entities: "papers", Examples: "feedback",
			Method: "svm", Partitions: 4,
		}); err != nil {
			sqlBenchErr = err
			return
		}
		sqlBenchSess = db.NewSession()
	})
	if sqlBenchErr != nil {
		b.Fatal(sqlBenchErr)
	}
	return sqlBenchSess
}

// BenchmarkSQLReadPath compares the planner's physical plans on the
// same 50k-entity engined view: the full scan every query used to
// pay, against the pushed-down members count, eps-range index scan,
// id point read, and boundary walk. COUNT-shaped statements keep row
// rendering out of the measurement.
func BenchmarkSQLReadPath(b *testing.B) {
	cases := []struct {
		name string
		stmt string
	}{
		{"FullScan", "SELECT COUNT(*) FROM served WHERE class = -1"},
		{"MembersCount", "SELECT COUNT(*) FROM served WHERE class = 1"},
		// ±2.0 covers the whole bimodal eps distribution of this corpus,
		// so the case measures a 50k-row index scan (the historical
		// ±0.05 band was empty — it measured parse overhead only).
		{"EpsRange", "SELECT COUNT(*) FROM served WHERE eps >= -2.0 AND eps <= 2.0"},
		{"PointRead", "SELECT class FROM served WHERE id = 25000"},
		{"Uncertain", "SELECT id FROM served ORDER BY ABS(eps) LIMIT 10"},
		// The live striped view scatters the same band to 4 stripes and
		// gathers it back in (eps, id) order.
		{"StripedMerge", "SELECT COUNT(*) FROM striped_served WHERE eps >= -2.0 AND eps <= 2.0"},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			s := sqlBenchSession(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(c.stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestSQLReadPathEmitJSON measures the vectorized read path on the
// same corpus BenchmarkSQLReadPath uses and writes one JSON object to
// the path in BENCH_JSON_OUT (CI writes BENCH_readpath_ci.json and
// diffs it against the committed BENCH_pr8.json). Each scan shape
// records batched ns/op and allocs/op; the three full-band shapes
// also record their speedup over a batch size of 1 — the executor's
// row-at-a-time degenerate case — so benchdiff guards the batching
// win itself, not just absolute latency. Skipped unless the env var
// is set.
func TestSQLReadPathEmitJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON_OUT")
	if out == "" {
		t.Skip("set BENCH_JSON_OUT=<path> to emit the SQL read-path benchmark JSON")
	}
	measure := func(stmt string) (int64, int64) {
		res := testing.Benchmark(func(b *testing.B) {
			s := sqlBenchSession(b)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
		})
		return res.NsPerOp(), res.AllocsPerOp()
	}
	shapes := []struct {
		key, stmt string
		vsRow     bool // also measure at batch size 1 for a speedup key
	}{
		{"fullscan", "SELECT COUNT(*) FROM served WHERE class = -1", true},
		{"epsrange", "SELECT COUNT(*) FROM served WHERE eps >= -2.0 AND eps <= 2.0", true},
		{"stripedmerge", "SELECT COUNT(*) FROM striped_served WHERE eps >= -2.0 AND eps <= 2.0", true},
		{"pointread", "SELECT class FROM served WHERE id = 25000", false},
		{"uncertain", "SELECT id FROM served ORDER BY ABS(eps) LIMIT 10", false},
	}
	report := map[string]any{
		"bench":      "SQLReadPath",
		"entities":   sqlBenchEntities,
		"cores":      runtime.GOMAXPROCS(0),
		"batch_size": exec.BatchSize(),
	}
	for _, sh := range shapes {
		ns, allocs := measure(sh.stmt)
		report[sh.key+"_ns_op"] = ns
		report[sh.key+"_allocs_op"] = allocs
		if sh.vsRow {
			exec.SetBatchSize(1)
			rowNs, _ := measure(sh.stmt)
			exec.SetBatchSize(1024)
			report["speedup_"+sh.key+"_vs_row"] = float64(rowNs) / float64(ns)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", out, data)
}

// BenchmarkSkiingVsOpt regenerates the Lemma 3.2 analysis: the
// Skiing simulation plus exact OPT on a drift instance.
func BenchmarkSkiingVsOpt(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	drift := make([]float64, 100)
	for i := range drift {
		drift[i] = r.Float64()
	}
	costs := skiing.DriftCosts{Drift: drift, Scale: 1, S: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ratio := skiing.Ratio(1, 10, costs); ratio <= 0 {
			b.Fatal("bad ratio")
		}
	}
}

// BenchmarkAlphaSensitivity regenerates App. C.2: eager Hazy-MM
// update cost under different Skiing α.
func BenchmarkAlphaSensitivity(b *testing.B) {
	for _, alpha := range []float64{0.5, 1, 2} {
		b.Run(fmt.Sprintf("alpha=%g", alpha), func(b *testing.B) {
			d := benchData(dataset.DBLife.Scale(benchScale))
			v := core.NewMemView(d.Entities, core.HazyStrategy, core.Options{
				Mode: core.Eager, Alpha: alpha,
				SGD:  learn.SGDConfig{Eta0: 0.5},
				Warm: d.Stream(800),
			})
			stream := d.Stream(b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := v.Update(stream[i].F, stream[i].Label); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
